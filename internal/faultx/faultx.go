// Package faultx is a deterministic, seeded fault injector for the network
// service layer. It is crashx's sibling one layer up the stack: where crashx
// crashes the simulated persistent-memory machine at exact store points,
// faultx breaks the machinery *around* the store — connections die mid-frame,
// writes tear, reads stall, shard writers panic at commit — and the schedule
// that produced any failure is a replayable Spec string.
//
// Injection sites:
//
//   - WrapConn wraps a net.Conn (plug it into server.Config.WrapConn). Writes
//     may be killed (connection closed before the frame lands), torn (a
//     partial prefix hits the wire, then the connection closes) or stalled;
//     reads may be stalled. Kill and torn both surface as a peer reset, which
//     is exactly what drives client reconnect + replay.
//   - CommitFault is called by the shard writer inside its contained commit
//     section (shard.Config.FaultHook / fasp.Options.FaultInjector). It may
//     panic — the containment machinery converts that into a Degraded shard
//     and typed ErrShardDown — or sleep while holding the shard, backing the
//     mailbox up into typed ErrShardBusy.
//
// Determinism: every injection site owns a private RNG seeded from
// Spec.Seed mixed with a stable site index (connection arrival order, shard
// id), so a replayed Spec reproduces the same per-site fault schedule. Unlike
// crashx the surrounding goroutine interleaving is the live scheduler's, so
// replay reproduces the fault pattern, not a bit-exact global order; in
// practice that is what makes a chaos failure debuggable.
package faultx

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Spec is a complete, replayable description of one fault schedule. The
// string form (String / ParseSpec round-trip) is what a failing chaos run
// prints and what `faspbench -chaos -chaos-spec` replays:
//
//	fx:1:seed:kill:torn:stall:stallms:panic:restarts
//
// e.g. fx:1:42:0.002:0.002:0.01:5:0.02:2 — seed 42, 0.2% conn kills, 0.2%
// torn writes, 1% stalls of 5ms, 2% injected writer panics, 2 whole-server
// crash-restarts.
type Spec struct {
	// Seed is the master seed; every injection site derives its stream
	// from it.
	Seed int64
	// KillProb is the per-write probability the connection is closed
	// before any of the frame reaches the wire.
	KillProb float64
	// TornProb is the per-write probability a strict prefix of the buffer
	// is written and then the connection is closed (torn frame).
	TornProb float64
	// StallProb is the per-read and per-write probability of sleeping
	// Stall before the I/O proceeds (the I/O itself then succeeds).
	StallProb float64
	// Stall is the stall duration.
	Stall time.Duration
	// PanicProb is the per-commit probability CommitFault panics inside
	// the shard writer's contained section.
	PanicProb float64
	// Restarts is the number of whole-server crash-restarts the chaos
	// harness schedules across the soak (kill listener + conns, crash the
	// simulated machine, reopen, re-listen).
	Restarts int
}

// String renders the Spec in its replayable wire form.
func (sp Spec) String() string {
	return fmt.Sprintf("fx:1:%d:%s:%s:%s:%d:%s:%d",
		sp.Seed,
		formatProb(sp.KillProb), formatProb(sp.TornProb), formatProb(sp.StallProb),
		sp.Stall.Milliseconds(),
		formatProb(sp.PanicProb),
		sp.Restarts)
}

func formatProb(p float64) string { return strconv.FormatFloat(p, 'g', -1, 64) }

// ParseSpec parses the String form back into a Spec. It is strict: the
// prefix, version, field count, and every field must parse, and
// probabilities must lie in [0,1].
func ParseSpec(s string) (Spec, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 9 || parts[0] != "fx" {
		return Spec{}, fmt.Errorf("faultx: malformed spec %q (want fx:1:seed:kill:torn:stall:stallms:panic:restarts)", s)
	}
	if parts[1] != "1" {
		return Spec{}, fmt.Errorf("faultx: unsupported spec version %q", parts[1])
	}
	var sp Spec
	var err error
	if sp.Seed, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
		return Spec{}, fmt.Errorf("faultx: bad seed %q: %w", parts[2], err)
	}
	probs := []struct {
		name string
		raw  string
		dst  *float64
	}{
		{"kill", parts[3], &sp.KillProb},
		{"torn", parts[4], &sp.TornProb},
		{"stall", parts[5], &sp.StallProb},
		{"panic", parts[7], &sp.PanicProb},
	}
	for _, p := range probs {
		v, err := strconv.ParseFloat(p.raw, 64)
		if err != nil || v < 0 || v > 1 {
			return Spec{}, fmt.Errorf("faultx: bad %s probability %q", p.name, p.raw)
		}
		*p.dst = v
	}
	ms, err := strconv.ParseInt(parts[6], 10, 64)
	if err != nil || ms < 0 {
		return Spec{}, fmt.Errorf("faultx: bad stall duration %q", parts[6])
	}
	sp.Stall = time.Duration(ms) * time.Millisecond
	restarts, err := strconv.Atoi(parts[8])
	if err != nil || restarts < 0 {
		return Spec{}, fmt.Errorf("faultx: bad restart count %q", parts[8])
	}
	sp.Restarts = restarts
	return sp, nil
}

// Counts reports how many faults the injector has actually fired, by kind.
type Counts struct {
	Kills  int64 `json:"kills"`  // connections killed before a write
	Torn   int64 `json:"torn"`   // torn (partial) writes
	Stalls int64 `json:"stalls"` // read/write stalls slept
	Panics int64 `json:"panics"` // injected shard-writer panics
}

// Injector injects the faults a Spec describes. One Injector serves a whole
// server: WrapConn hands each accepted connection its own derived RNG
// stream, CommitFault keeps one per shard. The zero probabilities make any
// site a no-op, so a zero Spec is a transparent pass-through.
type Injector struct {
	spec    Spec
	connSeq atomic.Int64
	enabled atomic.Bool

	mu     sync.Mutex
	shards map[int]*rand.Rand

	kills  atomic.Int64
	torn   atomic.Int64
	stalls atomic.Int64
	panics atomic.Int64
}

// New builds an Injector for spec, enabled.
func New(spec Spec) *Injector {
	in := &Injector{spec: spec, shards: make(map[int]*rand.Rand)}
	in.enabled.Store(true)
	return in
}

// Spec returns the schedule this injector runs.
func (in *Injector) Spec() Spec { return in.spec }

// String returns the replayable spec string.
func (in *Injector) String() string { return in.spec.String() }

// SetEnabled pauses (false) or resumes (true) all injection. The chaos
// harness disables injection for the final drain so the oracle verifies a
// quiesced store.
func (in *Injector) SetEnabled(v bool) { in.enabled.Store(v) }

// Counts snapshots the fired-fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Kills:  in.kills.Load(),
		Torn:   in.torn.Load(),
		Stalls: in.stalls.Load(),
		Panics: in.panics.Load(),
	}
}

// mix64 is splitmix64's finalizer — decorrelates seed^site so neighbouring
// site indices get unrelated streams.
func mix64(x int64) int64 {
	z := uint64(x) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// CommitFault is the engine-side injection point, called by the shard
// writer inside its contained commit section before the batch applies. With
// probability PanicProb it panics (containment turns that into a Degraded
// shard + ErrShardDown); with probability StallProb it sleeps Stall while
// holding the shard, so the mailbox backs up into ErrShardBusy.
func (in *Injector) CommitFault(shard int) {
	if !in.enabled.Load() || (in.spec.PanicProb == 0 && in.spec.StallProb == 0) {
		return
	}
	in.mu.Lock()
	rng := in.shards[shard]
	if rng == nil {
		rng = rand.New(rand.NewSource(mix64(in.spec.Seed ^ int64(shard)*0x5bd1e995)))
		in.shards[shard] = rng
	}
	p := rng.Float64()
	in.mu.Unlock()
	switch {
	case p < in.spec.PanicProb:
		in.panics.Add(1)
		panic(fmt.Sprintf("faultx: injected writer panic (shard %d, %s)", shard, in.spec))
	case p < in.spec.PanicProb+in.spec.StallProb && in.spec.Stall > 0:
		in.stalls.Add(1)
		time.Sleep(in.spec.Stall)
	}
}
