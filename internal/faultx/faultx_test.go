package faultx

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"
)

func TestSpecRoundTrip(t *testing.T) {
	specs := []Spec{
		{},
		{Seed: 42, KillProb: 0.002, TornProb: 0.002, StallProb: 0.01, Stall: 5 * time.Millisecond, PanicProb: 0.02, Restarts: 2},
		{Seed: -7, KillProb: 1, TornProb: 0, StallProb: 0.5, Stall: 250 * time.Millisecond, PanicProb: 0.125, Restarts: 10},
	}
	for _, want := range specs {
		s := want.String()
		got, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v want %+v", s, got, want)
		}
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	bad := []string{
		"",
		"fx:1:42",                          // too few fields
		"cx:1:42:0:0:0:0:0:0",              // wrong prefix
		"fx:2:42:0:0:0:0:0:0",              // unknown version
		"fx:1:nope:0:0:0:0:0:0",            // bad seed
		"fx:1:42:1.5:0:0:0:0:0",            // prob out of range
		"fx:1:42:0:-0.1:0:0:0:0",           // negative prob
		"fx:1:42:0:0:0:-1:0:0",             // negative stall
		"fx:1:42:0:0:0:0:0:-1",             // negative restarts
		"fx:1:42:0:0:0:0:0:0:extra",        // trailing field
		"fx:1:42:0.1:0.1:0.1:5:0.1:banana", // bad restarts
	}
	for _, s := range bad {
		if _, err := ParseSpec(s); err == nil {
			t.Errorf("ParseSpec(%q): want error, got nil", s)
		}
	}
}

// fakeConn records writes and close calls; reads always succeed.
type fakeConn struct {
	net.Conn
	wrote  bytes.Buffer
	closed bool
}

func (f *fakeConn) Write(p []byte) (int, error) { f.wrote.Write(p); return len(p), nil }
func (f *fakeConn) Read(p []byte) (int, error)  { return len(p), nil }
func (f *fakeConn) Close() error                { f.closed = true; return nil }

func TestWrapConnKill(t *testing.T) {
	in := New(Spec{Seed: 1, KillProb: 1})
	fc := &fakeConn{}
	c := in.WrapConn(fc)
	n, err := c.Write([]byte("hello world"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("killed write: got n=%d err=%v", n, err)
	}
	if !fc.closed || fc.wrote.Len() != 0 {
		t.Fatalf("kill must close without writing: closed=%v wrote=%d", fc.closed, fc.wrote.Len())
	}
	if got := in.Counts().Kills; got != 1 {
		t.Fatalf("Kills = %d, want 1", got)
	}
}

func TestWrapConnTorn(t *testing.T) {
	in := New(Spec{Seed: 1, TornProb: 1})
	fc := &fakeConn{}
	c := in.WrapConn(fc)
	frame := []byte("0123456789abcdef")
	n, err := c.Write(frame)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write error = %v", err)
	}
	if n <= 0 || n >= len(frame) {
		t.Fatalf("torn write must land a strict prefix, wrote %d of %d", n, len(frame))
	}
	if fc.wrote.Len() != n || !fc.closed {
		t.Fatalf("underlying: wrote=%d closed=%v, want %d true", fc.wrote.Len(), fc.closed, n)
	}
	// One-byte buffers have no strict prefix: degrade to kill.
	fc2 := &fakeConn{}
	c2 := in.WrapConn(fc2)
	if n, err := c2.Write([]byte{7}); n != 0 || !errors.Is(err, ErrInjected) || fc2.wrote.Len() != 0 {
		t.Fatalf("one-byte torn write: n=%d err=%v wrote=%d", n, err, fc2.wrote.Len())
	}
}

func TestWrapConnStallAndPassThrough(t *testing.T) {
	in := New(Spec{Seed: 9, StallProb: 1, Stall: time.Millisecond})
	fc := &fakeConn{}
	c := in.WrapConn(fc)
	if n, err := c.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("stalled write must still succeed: n=%d err=%v", n, err)
	}
	if _, err := c.Read(make([]byte, 4)); err != nil {
		t.Fatalf("stalled read: %v", err)
	}
	if got := in.Counts().Stalls; got != 2 {
		t.Fatalf("Stalls = %d, want 2", got)
	}
	// Zero spec wraps to the identity: same net.Conn back.
	id := New(Spec{Seed: 9})
	if got := id.WrapConn(fc); got != net.Conn(fc) {
		t.Fatalf("zero spec must return the conn unwrapped")
	}
}

func TestWrapConnDeterministicStreams(t *testing.T) {
	sp := Spec{Seed: 1234, KillProb: 0.1, TornProb: 0.1, StallProb: 0.2, Stall: time.Nanosecond}
	run := func() []string {
		in := New(sp)
		var seq []string
		for conn := 0; conn < 4; conn++ {
			fc := &fakeConn{}
			c := in.WrapConn(fc)
			for i := 0; i < 50 && !fc.closed; i++ {
				n, err := c.Write([]byte("payload-payload"))
				switch {
				case err == nil:
					seq = append(seq, "ok")
				case n == 0:
					seq = append(seq, "kill")
				default:
					seq = append(seq, "torn")
				}
			}
		}
		return seq
	}
	a, b := run(), run()
	if strings.Join(a, ",") != strings.Join(b, ",") {
		t.Fatalf("same spec must deal the same per-conn fault sequence:\n a=%v\n b=%v", a, b)
	}
	if !strings.Contains(strings.Join(a, ","), "kill") {
		t.Fatalf("expected at least one kill in %v", a)
	}
}

func TestCommitFaultPanicIsReplayable(t *testing.T) {
	in := New(Spec{Seed: 5, PanicProb: 1})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("CommitFault with PanicProb=1 must panic")
		}
		msg, _ := r.(string)
		if !strings.Contains(msg, in.String()) {
			t.Fatalf("panic %q must embed the replayable spec %q", msg, in.String())
		}
		if got := in.Counts().Panics; got != 1 {
			t.Fatalf("Panics = %d, want 1", got)
		}
	}()
	in.CommitFault(3)
}

func TestSetEnabledPausesInjection(t *testing.T) {
	in := New(Spec{Seed: 5, KillProb: 1, PanicProb: 1})
	in.SetEnabled(false)
	in.CommitFault(0) // must not panic
	fc := &fakeConn{}
	c := in.WrapConn(fc)
	if n, err := c.Write([]byte("abc")); n != 3 || err != nil {
		t.Fatalf("disabled injector must pass writes through: n=%d err=%v", n, err)
	}
	in.SetEnabled(true)
	if _, err := c.Write([]byte("abc")); !errors.Is(err, ErrInjected) {
		t.Fatalf("re-enabled injector must fault: %v", err)
	}
}
