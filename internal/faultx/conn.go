package faultx

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected is the error returned by a faulted Read/Write. It wraps no
// syscall error on purpose: the injected failure also closes the underlying
// connection, so the peer observes an ordinary reset while the local caller
// gets a typed, grep-able cause.
var ErrInjected = errors.New("faultx: injected connection fault")

// WrapConn wraps c with this injector's network-fault schedule. Each wrapped
// connection draws from a private RNG stream derived from Spec.Seed and the
// connection's arrival index, so a replayed Spec deals the same per-
// connection fault sequence. Safe for one concurrent reader + one concurrent
// writer, the net.Conn contract the server relies on.
func (in *Injector) WrapConn(c net.Conn) net.Conn {
	sp := in.spec
	if sp.KillProb == 0 && sp.TornProb == 0 && sp.StallProb == 0 {
		return c
	}
	idx := in.connSeq.Add(1)
	return &faultConn{
		Conn: c,
		in:   in,
		rng:  rand.New(rand.NewSource(mix64(sp.Seed ^ idx*0x9e3779b1))),
	}
}

// faultConn injects write kills, torn writes, and read/write stalls. The
// rng is shared by the reader and writer goroutines, so draws go through a
// mutex; the fault actions themselves (sleep, close) run outside it.
type faultConn struct {
	net.Conn
	in  *Injector
	mu  sync.Mutex
	rng *rand.Rand
}

type faultKind int

const (
	faultNone faultKind = iota
	faultKill           // close before writing anything
	faultTorn           // write a strict prefix, then close
	faultStall
)

// draw deals the next fault for one I/O. Reads only stall — a read-side
// kill is indistinguishable from a peer hangup and adds nothing torn writes
// don't already cover.
func (c *faultConn) draw(write bool) (faultKind, int64) {
	if !c.in.enabled.Load() {
		return faultNone, 0
	}
	sp := c.in.spec
	c.mu.Lock()
	defer c.mu.Unlock()
	p := c.rng.Float64()
	if write {
		switch {
		case p < sp.KillProb:
			return faultKill, 0
		case p < sp.KillProb+sp.TornProb:
			return faultTorn, c.rng.Int63()
		case p < sp.KillProb+sp.TornProb+sp.StallProb && sp.Stall > 0:
			return faultStall, 0
		}
		return faultNone, 0
	}
	if p < sp.StallProb && sp.Stall > 0 {
		return faultStall, 0
	}
	return faultNone, 0
}

func (c *faultConn) Read(p []byte) (int, error) {
	if k, _ := c.draw(false); k == faultStall {
		c.in.stalls.Add(1)
		time.Sleep(c.in.spec.Stall)
	}
	return c.Conn.Read(p)
}

func (c *faultConn) Write(p []byte) (int, error) {
	k, r := c.draw(true)
	switch k {
	case faultKill:
		c.in.kills.Add(1)
		c.Conn.Close()
		return 0, ErrInjected
	case faultTorn:
		// A strict prefix lands on the wire, then the connection dies:
		// the peer sees a torn frame. One-byte buffers degrade to a
		// kill (no strict prefix exists).
		if len(p) > 1 {
			n := 1 + int(r%int64(len(p)-1))
			c.Conn.Write(p[:n])
			c.in.torn.Add(1)
			c.Conn.Close()
			return n, ErrInjected
		}
		c.in.kills.Add(1)
		c.Conn.Close()
		return 0, ErrInjected
	case faultStall:
		c.in.stalls.Add(1)
		time.Sleep(c.in.spec.Stall)
	}
	return c.Conn.Write(p)
}
