package fasp

import (
	"compress/gzip"
	"encoding/gob"
	"fasp/internal/btree"
	"fasp/internal/engine"
	"fasp/internal/hashidx"
	"fmt"
	"os"
)

// snapshotHeader describes a saved store; the payload is the gzip'd PM
// medium image (crash-consistent by construction: only flushed data is in
// the medium).
type snapshotHeader struct {
	Magic    string
	Version  int
	Scheme   string
	PageSize int
	MaxPages int
}

const snapshotMagic = "FASP-SNAPSHOT"

// Save writes a crash-consistent snapshot of the store's persistent memory
// to path. Unflushed (volatile) data is not included — loading a snapshot
// is equivalent to recovering after a power failure at the moment of the
// save, so committed transactions are always recovered intact.
func (b *base) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	zw := gzip.NewWriter(f)
	enc := gob.NewEncoder(zw)
	hdr := snapshotHeader{
		Magic:    snapshotMagic,
		Version:  1,
		Scheme:   b.opts.Scheme,
		PageSize: b.opts.PageSize,
		MaxPages: b.opts.MaxPages,
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	if err := enc.Encode(b.arena.MediumSnapshot()); err != nil {
		return err
	}
	if err := zw.Close(); err != nil {
		return err
	}
	return f.Sync()
}

// loadSnapshot builds a base from a snapshot file. opts supplies the
// simulated-machine knobs (latencies, cache size); the store geometry and
// scheme come from the file.
func loadSnapshot(path string, opts Options) (*base, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		return nil, fmt.Errorf("fasp: bad snapshot: %w", err)
	}
	dec := gob.NewDecoder(zr)
	var hdr snapshotHeader
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("fasp: bad snapshot header: %w", err)
	}
	if hdr.Magic != snapshotMagic || hdr.Version != 1 {
		return nil, fmt.Errorf("fasp: not a fasp snapshot (magic %q v%d)", hdr.Magic, hdr.Version)
	}
	var img []byte
	if err := dec.Decode(&img); err != nil {
		return nil, fmt.Errorf("fasp: bad snapshot payload: %w", err)
	}
	opts.Scheme = hdr.Scheme
	opts.PageSize = hdr.PageSize
	opts.MaxPages = hdr.MaxPages
	b, err := newBase(opts)
	if err != nil {
		return nil, err
	}
	if err := b.arena.RestoreMedium(img); err != nil {
		return nil, err
	}
	// A snapshot is a power-failure image: run recovery via reattach.
	if err := b.reattach(); err != nil {
		return nil, err
	}
	return b, nil
}

// OpenSnapshot loads a SQL database saved with Save, running crash
// recovery on the image.
func OpenSnapshot(path string, opts Options) (*DB, error) {
	b, err := loadSnapshot(path, opts)
	if err != nil {
		return nil, err
	}
	return &DB{base: b, eng: engine.Open(b.store)}, nil
}

// OpenSnapshotKV loads a key/value store saved with Save.
func OpenSnapshotKV(path string, opts Options) (*KV, error) {
	b, err := loadSnapshot(path, opts)
	if err != nil {
		return nil, err
	}
	return &KV{base: b, tree: btree.New(b.store)}, nil
}

// OpenSnapshotHash loads a hash index saved with Save.
func OpenSnapshotHash(path string, opts Options) (*Hash, error) {
	b, err := loadSnapshot(path, opts)
	if err != nil {
		return nil, err
	}
	return &Hash{base: b, idx: hashidx.New(b.store)}, nil
}
