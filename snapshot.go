package fasp

import (
	"compress/gzip"
	"encoding/gob"
	"errors"
	"fasp/internal/btree"
	"fasp/internal/engine"
	"fasp/internal/hashidx"
	"fmt"
	"os"
	"path/filepath"
)

// ErrBadSnapshot tags every snapshot-format failure — truncated or
// corrupted file, wrong magic, implausible header fields, short payload —
// so callers can distinguish "this file is not a usable snapshot" from
// environmental errors (missing file, permissions) with errors.Is.
var ErrBadSnapshot = errors.New("fasp: bad snapshot")

// snapshotHeader describes a saved store; the payload is one gzip'd PM
// medium image (version 1, single store) or N images (version 2, sharded)
// — crash-consistent by construction: only flushed data is in the medium.
//
// Version 2 additionally records the shard count and group-commit bound so
// a sharded store reopens with the same key partitioning (ShardFor is an
// on-disk contract: images are only meaningful under the hash that built
// them).
type snapshotHeader struct {
	Magic    string
	Version  int
	Scheme   string
	PageSize int
	MaxPages int
	Shards   int // version >= 2
	MaxBatch int // version >= 2
}

const snapshotMagic = "FASP-SNAPSHOT"

// validate rejects headers that could not have been written by Save —
// wrong magic or version, geometry outside any buildable store, or (v2) a
// shard count the restore loop could silently mishandle: a zero shard
// count would restore no images at all and hand back an empty store.
func (h snapshotHeader) validate() error {
	if h.Magic != snapshotMagic || h.Version < 1 || h.Version > 2 {
		return fmt.Errorf("%w: not a fasp snapshot (magic %q v%d)", ErrBadSnapshot, h.Magic, h.Version)
	}
	if h.PageSize < 64 || h.PageSize > 1<<20 {
		return fmt.Errorf("%w: implausible page size %d", ErrBadSnapshot, h.PageSize)
	}
	if h.MaxPages < 1 || h.MaxPages > 1<<28 {
		return fmt.Errorf("%w: implausible page bound %d", ErrBadSnapshot, h.MaxPages)
	}
	if h.Version >= 2 && (h.Shards < 1 || h.Shards > 4096) {
		return fmt.Errorf("%w: implausible shard count %d", ErrBadSnapshot, h.Shards)
	}
	return nil
}

// writeSnapshotAtomic writes a snapshot through fn to a temp file in
// path's directory and renames it into place only after the data is
// synced, so a mid-save error or crash never destroys the previous good
// snapshot. The write-side Close error is propagated, not discarded.
func writeSnapshotAtomic(path string, fn func(enc *gob.Encoder) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	zw := gzip.NewWriter(f)
	if err = fn(gob.NewEncoder(zw)); err != nil {
		return err
	}
	if err = zw.Close(); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Save writes a crash-consistent snapshot of the store's persistent memory
// to path. Unflushed (volatile) data is not included — loading a snapshot
// is equivalent to recovering after a power failure at the moment of the
// save, so committed transactions are always recovered intact. The file is
// written to a temp sibling and atomically renamed into place.
func (b *base) Save(path string) error {
	return writeSnapshotAtomic(path, func(enc *gob.Encoder) error {
		hdr := snapshotHeader{
			Magic:    snapshotMagic,
			Version:  1,
			Scheme:   b.opts.Scheme,
			PageSize: b.opts.PageSize,
			MaxPages: b.opts.MaxPages,
		}
		if err := enc.Encode(hdr); err != nil {
			return err
		}
		return enc.Encode(b.arena.MediumSnapshot())
	})
}

// Save writes a crash-consistent snapshot to path. A sharded store writes
// a version-2 snapshot holding every shard's medium image; each image is
// individually crash-consistent, and because the engine offers no
// cross-shard transactions, any skew between shard images is benign (it
// looks like shards crashing microseconds apart).
func (kv *KV) Save(path string) error {
	if kv.eng == nil {
		return kv.base.Save(path)
	}
	return writeSnapshotAtomic(path, func(enc *gob.Encoder) error {
		hdr := snapshotHeader{
			Magic:    snapshotMagic,
			Version:  2,
			Scheme:   kv.opts.Scheme,
			PageSize: kv.opts.PageSize,
			MaxPages: kv.opts.MaxPages,
			Shards:   kv.eng.Shards(),
			MaxBatch: kv.eng.MaxBatch(),
		}
		if err := enc.Encode(hdr); err != nil {
			return err
		}
		for _, img := range kv.eng.MediumSnapshots() {
			if err := enc.Encode(img); err != nil {
				return err
			}
		}
		return nil
	})
}

// readSnapshotHeader opens path and decodes the header, returning the
// still-open decoder positioned at the first medium image.
func readSnapshotHeader(path string) (*os.File, *gob.Decoder, snapshotHeader, error) {
	var hdr snapshotHeader
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, hdr, err
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, nil, hdr, fmt.Errorf("%w: %w", ErrBadSnapshot, err)
	}
	dec := gob.NewDecoder(zr)
	if err := dec.Decode(&hdr); err != nil {
		f.Close()
		return nil, nil, hdr, fmt.Errorf("%w: header: %w", ErrBadSnapshot, err)
	}
	if err := hdr.validate(); err != nil {
		f.Close()
		return nil, nil, hdr, err
	}
	return f, dec, hdr, nil
}

// loadSnapshot builds a base from a version-1 (single-store) snapshot
// file. opts supplies the simulated-machine knobs (latencies, cache size);
// the store geometry and scheme come from the file.
func loadSnapshot(path string, opts Options) (*base, error) {
	f, dec, hdr, err := readSnapshotHeader(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if hdr.Version != 1 {
		return nil, fmt.Errorf("fasp: snapshot %s is sharded (v%d); only OpenSnapshotKV can load it", path, hdr.Version)
	}
	var img []byte
	if err := dec.Decode(&img); err != nil {
		return nil, fmt.Errorf("%w: payload: %w", ErrBadSnapshot, err)
	}
	opts.Scheme = hdr.Scheme
	opts.PageSize = hdr.PageSize
	opts.MaxPages = hdr.MaxPages
	b, err := newBase(opts)
	if err != nil {
		return nil, err
	}
	if err := b.arena.RestoreMedium(img); err != nil {
		return nil, fmt.Errorf("%w: restore: %w", ErrBadSnapshot, err)
	}
	// A snapshot is a power-failure image: run recovery via reattach.
	if err := b.reattach(); err != nil {
		return nil, err
	}
	return b, nil
}

// OpenSnapshot loads a SQL database saved with Save, running crash
// recovery on the image.
func OpenSnapshot(path string, opts Options) (*DB, error) {
	b, err := loadSnapshot(path, opts)
	if err != nil {
		return nil, err
	}
	return &DB{base: b, eng: engine.Open(b.store)}, nil
}

// OpenSnapshotKV loads a key/value store saved with Save. A version-2
// (sharded) snapshot restores every shard's image and runs per-shard crash
// recovery; opts supplies the machine knobs, while scheme, geometry, shard
// count and batch bound come from the file.
func OpenSnapshotKV(path string, opts Options) (*KV, error) {
	f, dec, hdr, err := readSnapshotHeader(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	opts.Scheme = hdr.Scheme
	opts.PageSize = hdr.PageSize
	opts.MaxPages = hdr.MaxPages
	if hdr.Version == 1 {
		f.Close()
		b, err := loadSnapshot(path, opts)
		if err != nil {
			return nil, err
		}
		opts.fill()
		kv := &KV{base: b, tree: btree.New(b.store), opts: opts, rec: newRecorder(opts)}
		registerKV(kv)
		return kv, nil
	}
	opts.Shards = hdr.Shards
	opts.MaxBatch = hdr.MaxBatch
	opts.fill()
	rec := newRecorder(opts)
	eng, err := newShardEngine(opts, rec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < hdr.Shards; i++ {
		var img []byte
		if err := dec.Decode(&img); err != nil {
			eng.Close()
			return nil, fmt.Errorf("%w: payload (shard %d): %w", ErrBadSnapshot, i, err)
		}
		if err := eng.RestoreShard(i, img); err != nil {
			eng.Close()
			return nil, fmt.Errorf("%w: restore shard %d: %w", ErrBadSnapshot, i, err)
		}
	}
	// The restored images are power-failure images: run per-shard recovery.
	if err := eng.Reopen(); err != nil {
		eng.Close()
		return nil, err
	}
	kv := &KV{eng: eng, opts: opts, rec: rec}
	registerKV(kv)
	return kv, nil
}

// OpenSnapshotHash loads a hash index saved with Save.
func OpenSnapshotHash(path string, opts Options) (*Hash, error) {
	b, err := loadSnapshot(path, opts)
	if err != nil {
		return nil, err
	}
	return &Hash{base: b, idx: hashidx.New(b.store)}, nil
}
