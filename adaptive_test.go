package fasp

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"fasp/internal/pmem"
)

// TestSchemeValidation pins the Options.Scheme contract: names are
// case-insensitive, the journal/nvwal baselines are accepted spellings, and
// anything else fails Open/OpenKV with a wrapped ErrBadScheme.
func TestSchemeValidation(t *testing.T) {
	cases := []struct {
		scheme string
		ok     bool
	}{
		{"", true}, // default fast+
		{"fast+", true},
		{"FAST+", true},
		{"Fast", true},
		{"fast", true},
		{"wal", true},
		{"WAL", true},
		{"nvwal", true},
		{"NVWAL", true},
		{"NvWal", true},
		{"journal", true},
		{"Journal", true},
		{"JOURNAL", true},
		{"lsm", false},
		{"fast++", false},
		{"fast plus", false},
		{"wal ", false}, // no trimming: exact names only
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("kv_%q", tc.scheme), func(t *testing.T) {
			kv, err := OpenKV(Options{Scheme: tc.scheme})
			if tc.ok {
				if err != nil {
					t.Fatalf("OpenKV(%q) failed: %v", tc.scheme, err)
				}
				kv.Close()
				return
			}
			if !errors.Is(err, ErrBadScheme) {
				t.Fatalf("OpenKV(%q): want ErrBadScheme, got %v", tc.scheme, err)
			}
		})
	}
	// The SQL facade and the sharded engine share the constructors; spot-check
	// that both surface the same typed error.
	if _, err := Open(Options{Scheme: "btrfs"}); !errors.Is(err, ErrBadScheme) {
		t.Fatalf("Open: want ErrBadScheme, got %v", err)
	}
	if _, err := OpenKV(Options{Scheme: "btrfs", Shards: 4}); !errors.Is(err, ErrBadScheme) {
		t.Fatalf("sharded OpenKV: want ErrBadScheme, got %v", err)
	}
	if _, err := OpenHash(Options{Scheme: "btrfs"}, 8); !errors.Is(err, ErrBadScheme) {
		t.Fatalf("OpenHash: want ErrBadScheme, got %v", err)
	}
}

// adaptiveKV opens a small sharded store with the given adaptive options.
func adaptiveKV(t *testing.T, opts Options) *KV {
	t.Helper()
	if opts.Shards == 0 {
		opts.Shards = 2
	}
	if opts.PageSize == 0 {
		opts.PageSize = 1024
	}
	if opts.MaxPages == 0 {
		opts.MaxPages = 4096
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = 8
	}
	kv, err := OpenKV(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(kv.Close)
	return kv
}

func mustApply(t *testing.T, kv *KV, ops []Op) {
	t.Helper()
	for i, err := range kv.ApplyBatch(ops) {
		if err != nil {
			t.Fatalf("op %d (%s %q): %v", i, ops[i].Kind, ops[i].Key, err)
		}
	}
}

func akey(i int) []byte { return []byte(fmt.Sprintf("a%06d", i)) }
func aval(i int) []byte { return []byte(fmt.Sprintf("value-%06d-%032d", i, i)) }

// shardKeys partitions keys by the engine's routing so tests can address a
// specific shard deterministically.
func shardKeys(kv *KV, keys [][]byte) [][][]byte {
	out := make([][][]byte, kv.Shards())
	for _, k := range keys {
		si := kv.eng.ShardFor(k)
		out[si] = append(out[si], k)
	}
	return out
}

// TestAdaptiveSchemeMigration drives the controller through both migration
// families end to end on the deterministic ApplyBatch path: a batch-heavy
// phase pushes every shard fast+ → wal (cross-family copy), then a trickle of
// single-leaf updates pulls it wal → fast+ (cross-family back). Contents and
// structure must survive both hops.
func TestAdaptiveSchemeMigration(t *testing.T) {
	kv := adaptiveKV(t, Options{Scheme: SchemeFASTPlus, AdaptiveScheme: true})

	// Phase 1: batch-heavy inserts. 64 ops/call across 2 shards with
	// MaxBatch 8 → mean batch ≈ 8 ≥ BatchHi(6) → target wal; window 32,
	// hysteresis 2 → migration at the 64th sample.
	var keys [][]byte
	id := 0
	for call := 0; call < 70; call++ {
		ops := make([]Op, 0, 64)
		for j := 0; j < 64; j++ {
			k := akey(id)
			keys = append(keys, k)
			ops = append(ops, Op{Kind: OpInsert, Key: k, Val: aval(id)})
			id++
		}
		mustApply(t, kv, ops)
	}
	for i := 0; i < kv.Shards(); i++ {
		if s, _ := kv.ShardScheme(i); s != SchemeWAL {
			tr, _ := kv.TuneTrace(i)
			t.Fatalf("shard %d: scheme = %q after batch-heavy phase, want wal (trace %+v)", i, s, tr)
		}
	}

	// The migration must be visible in the decision trace.
	for i := 0; i < kv.Shards(); i++ {
		tr, err := kv.TuneTrace(i)
		if err != nil {
			t.Fatal(err)
		}
		migrated := false
		for _, d := range tr {
			if d.Migrated && d.Migrate == SchemeWAL {
				migrated = true
			}
		}
		if !migrated {
			t.Fatalf("shard %d: no Migrated=true wal entry in trace %+v", i, tr)
		}
	}

	// Phase 2: single-leaf trickle. One single-op chunk per shard per call →
	// mean batch 1, single-leaf fraction 1 → target fast+ after the
	// post-migration cooldown (2 windows) plus hysteresis (2 windows).
	byShard := shardKeys(kv, keys)
	for call := 0; call < 150; call++ {
		var ops []Op
		for si := 0; si < kv.Shards(); si++ {
			k := byShard[si][call%len(byShard[si])]
			ops = append(ops, Op{Kind: OpUpdate, Key: k, Val: aval(call)})
		}
		mustApply(t, kv, ops)
	}
	for i := 0; i < kv.Shards(); i++ {
		if s, _ := kv.ShardScheme(i); s != SchemeFASTPlus {
			tr, _ := kv.TuneTrace(i)
			t.Fatalf("shard %d: scheme = %q after single-leaf phase, want fast+ (trace %+v)", i, s, tr)
		}
	}

	// Both hops preserved every record.
	if err := kv.Validate(); err != nil {
		t.Fatalf("validate after migrations: %v", err)
	}
	n, err := kv.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("count = %d, want %d", n, len(keys))
	}
	for i, k := range keys {
		v, ok, err := kv.Get(k)
		if err != nil || !ok {
			t.Fatalf("key %d lost after migrations (ok=%v err=%v)", i, ok, err)
		}
		_ = v
	}
}

// TestAdaptiveMigrationSurvivesCrash checks the persisted scheme tag: after
// an online migration, a whole-store power failure plus recovery must come
// back under the migrated scheme (not Options.Scheme) with contents intact.
func TestAdaptiveMigrationSurvivesCrash(t *testing.T) {
	kv := adaptiveKV(t, Options{Scheme: SchemeFASTPlus, AdaptiveScheme: true})

	var keys [][]byte
	id := 0
	for call := 0; call < 66; call++ {
		ops := make([]Op, 0, 64)
		for j := 0; j < 64; j++ {
			k := akey(id)
			keys = append(keys, k)
			ops = append(ops, Op{Kind: OpInsert, Key: k, Val: aval(id)})
			id++
		}
		mustApply(t, kv, ops)
	}
	for i := 0; i < kv.Shards(); i++ {
		if s, _ := kv.ShardScheme(i); s != SchemeWAL {
			t.Fatalf("shard %d: scheme = %q, want wal before crash", i, s)
		}
	}

	kv.Crash(pmem.CrashOptions{Seed: 3, EvictProb: 0.5})
	if err := kv.ReopenKV(); err != nil {
		t.Fatalf("reopen: %v", err)
	}
	for i := 0; i < kv.Shards(); i++ {
		if s, _ := kv.ShardScheme(i); s != SchemeWAL {
			t.Fatalf("shard %d: recovery resolved scheme %q, want wal (tag ignored?)", i, s)
		}
	}
	if err := kv.Validate(); err != nil {
		t.Fatalf("validate after recovery: %v", err)
	}
	for i, k := range keys {
		if _, ok, err := kv.Get(k); err != nil || !ok {
			t.Fatalf("key %d lost across crash (ok=%v err=%v)", i, ok, err)
		}
	}
}

// TestAdaptiveDefrag drives the proactive defragmentation loop: deletes
// carve dead space into committed leaves, the next decision window measures
// the fragmentation ratio, and the defrag pass rewrites hot leaves
// copy-on-write without disturbing live records.
func TestAdaptiveDefrag(t *testing.T) {
	kv := adaptiveKV(t, Options{Scheme: SchemeFASTPlus, DefragThreshold: 0.2})

	var keys [][]byte
	var ops []Op
	for i := 0; i < 600; i++ {
		k := akey(i)
		keys = append(keys, k)
		ops = append(ops, Op{Kind: OpInsert, Key: k, Val: aval(i)})
	}
	mustApply(t, kv, ops)
	ops = ops[:0]
	for i := 0; i < 600; i += 2 {
		ops = append(ops, Op{Kind: OpDelete, Key: keys[i]})
	}
	mustApply(t, kv, ops)

	// Trickle updates until decision windows close on every shard (32
	// samples each); window close measures fragmentation and defrags.
	live := make([][]byte, 0, 300)
	for i := 1; i < 600; i += 2 {
		live = append(live, keys[i])
	}
	byShard := shardKeys(kv, live)
	for call := 0; call < 80; call++ {
		var batch []Op
		for si := 0; si < kv.Shards(); si++ {
			k := byShard[si][call%len(byShard[si])]
			batch = append(batch, Op{Kind: OpUpdate, Key: k, Val: aval(call + 7000)})
		}
		mustApply(t, kv, batch)
	}

	defragged := 0
	for i := 0; i < kv.Shards(); i++ {
		frag, err := kv.ShardFragmentation(i)
		if err != nil {
			t.Fatal(err)
		}
		if frag < 0 {
			t.Fatalf("shard %d: fragmentation never measured", i)
		}
		tr, err := kv.TuneTrace(i)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) == 0 {
			t.Fatalf("shard %d: no decision windows closed", i)
		}
		measured := false
		for _, d := range tr {
			if d.FragPct >= 0 {
				measured = true
			}
			defragged += d.DefragPages
		}
		if !measured {
			t.Fatalf("shard %d: no window measured fragmentation (trace %+v)", i, tr)
		}
	}
	if defragged == 0 {
		t.Fatalf("no leaves were proactively defragmented")
	}

	if err := kv.Validate(); err != nil {
		t.Fatalf("validate after defrag: %v", err)
	}
	for i := 1; i < 600; i += 2 {
		if _, ok, err := kv.Get(keys[i]); err != nil || !ok {
			t.Fatalf("live key %d lost after defrag (ok=%v err=%v)", i, ok, err)
		}
	}
	for i := 0; i < 600; i += 2 {
		if _, ok, _ := kv.Get(keys[i]); ok {
			t.Fatalf("deleted key %d resurrected by defrag", i)
		}
	}
}

// TestAdaptiveBatchBounds checks the AIMD loop stays inside its clamp and
// that ApplyBatch chunks at the live per-shard bound.
func TestAdaptiveBatchBounds(t *testing.T) {
	kv := adaptiveKV(t, Options{Scheme: SchemeFASTPlus, AdaptiveBatch: true, MaxBatch: 8})
	var ops []Op
	for i := 0; i < 2400; i++ {
		ops = append(ops, Op{Kind: OpPut, Key: akey(i % 500), Val: aval(i)})
		if len(ops) == 48 {
			mustApply(t, kv, ops)
			ops = ops[:0]
		}
	}
	floor, ceil := 2, 32 // max(1, 8/4), 8*4
	for i := 0; i < kv.Shards(); i++ {
		mb, err := kv.ShardMaxBatch(i)
		if err != nil {
			t.Fatal(err)
		}
		if mb < floor || mb > ceil {
			t.Fatalf("shard %d: live batch bound %d outside [%d, %d]", i, mb, floor, ceil)
		}
	}
	if err := kv.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestAdaptiveConcurrentStress is the race-detector arm (run with -race in
// CI): every adaptive loop on at once while concurrent writers and
// optimistic readers hammer the store through the mailbox path, so scheme
// migrations and defrag passes race epoch-pinned reads.
func TestAdaptiveConcurrentStress(t *testing.T) {
	kv := adaptiveKV(t, Options{
		Scheme:          SchemeFASTPlus,
		Shards:          4,
		AdaptiveScheme:  true,
		AdaptiveBatch:   true,
		DefragThreshold: 0.2,
	})
	const writers, readers, perW = 4, 4, 300
	var wwg, rwg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wwg.Add(1)
		go func(w int) {
			defer wwg.Done()
			for i := 0; i < perW; i++ {
				id := w*perW + i
				if err := kv.Put(akey(id), aval(id)); err != nil {
					t.Errorf("put %d: %v", id, err)
					return
				}
				if i%8 == 7 {
					ops := make([]Op, 16)
					for j := range ops {
						// Upsert keys inside this writer's own id range so
						// the final count is exact.
						k := w*perW + (i-j+perW)%perW
						ops[j] = Op{Kind: OpPut, Key: akey(k), Val: aval(id + j)}
					}
					for _, err := range kv.ApplyBatch(ops) {
						if err != nil {
							t.Errorf("batch: %v", err)
							return
						}
					}
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		rwg.Add(1)
		go func(r int) {
			defer rwg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := kv.Get(akey((r*131 + i) % (writers * perW))); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if i%64 == 0 {
					if err := kv.Scan(akey(0), akey(200), func(k, v []byte) bool { return true }); err != nil {
						t.Errorf("scan: %v", err)
						return
					}
				}
			}
		}(r)
	}
	// Writers finish first; only then are the readers released, so reads
	// race live migrations for the whole run.
	wwg.Wait()
	close(stop)
	rwg.Wait()
	if err := kv.Validate(); err != nil {
		t.Fatalf("validate after stress: %v", err)
	}
	n, err := kv.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != writers*perW {
		t.Fatalf("count = %d, want %d", n, writers*perW)
	}

	// The tuner must have been live on the mailbox path too.
	sawWindow := false
	for i := 0; i < kv.Shards(); i++ {
		tr, _ := kv.TuneTrace(i)
		if len(tr) > 0 {
			sawWindow = true
		}
	}
	if !sawWindow {
		t.Fatal("no decision window closed during stress run")
	}
}
