package fasp

// Adaptive per-shard tuning, facade side: the persisted scheme tag, the
// crash-safe online scheme migration, and the wiring that hands both to the
// sharded engine. The policy itself lives in internal/tune (the controller)
// and internal/shard (when decisions are taken); this file owns everything
// that touches the facade's store constructors and PM layout.

import (
	"errors"
	"strings"

	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/shard"
	"fasp/internal/tune"
	"fasp/internal/wal"
)

// TuneDecision is one adaptive-controller decision window; see KV.TuneTrace.
type TuneDecision = tune.Decision

// Each adaptive shard carries a 64-byte PM control block ("shard header")
// beside its database arena: a magic word plus the live scheme code. The tag
// is the migration commit point — recovery attaches whichever scheme the tag
// names, so flipping the single persisted word moves the shard between
// schemes failure-atomically.
const (
	ctlArenaBytes = 64
	ctlMagic      = 0x4641535043545231 // "FASPCTR1"
	ctlMagicOff   = 0
	ctlSchemeOff  = 8
)

// phaseMigrate brackets the simulated time a scheme migration spends
// checkpointing, copying, and reformatting, so migrations show up as their
// own bucket in phase breakdowns.
const phaseMigrate = "Migrate"

// schemeCode maps canonical scheme names to persisted tag codes. The codes
// are an on-media format: never reorder or reuse them.
func schemeCode(scheme string) (uint64, bool) {
	switch scheme {
	case SchemeFASTPlus:
		return 1, true
	case SchemeFAST:
		return 2, true
	case SchemeWAL:
		return 3, true
	case SchemeNVWAL:
		return 4, true
	case SchemeJournal:
		return 5, true
	}
	return 0, false
}

// codeScheme is schemeCode's inverse.
func codeScheme(code uint64) (string, bool) {
	for _, s := range []string{SchemeFASTPlus, SchemeFAST, SchemeWAL, SchemeNVWAL, SchemeJournal} {
		if c, _ := schemeCode(s); c == code {
			return s, true
		}
	}
	return "", false
}

// newCtlArena formats a shard's scheme-tag block on its machine, persisting
// the configured scheme as the initial tag.
func newCtlArena(sys *pmem.System, scheme string) *pmem.Arena {
	ctl := sys.NewArena("ctl", ctlArenaBytes, pmem.PM)
	code, _ := schemeCode(scheme)
	ctl.StoreU64(ctlMagicOff, ctlMagic)
	ctl.StoreU64(ctlSchemeOff, code)
	ctl.Persist(ctlMagicOff, 16)
	sys.Fence()
	return ctl
}

// writeCtlTag flips the persisted scheme tag: one 8-byte store (hardware-
// atomic), persist, fence — the commit point of a migration.
func writeCtlTag(ctl *pmem.Arena, scheme string) {
	code, _ := schemeCode(scheme)
	ctl.StoreU64(ctlSchemeOff, code)
	ctl.Persist(ctlSchemeOff, 8)
	ctl.Sys().Fence()
}

// readCtlTag resolves the persisted scheme tag; ok is false when there is no
// control block (adaptivity off) or it names no known scheme.
func readCtlTag(ctl *pmem.Arena) (string, bool) {
	if ctl == nil || ctl.LoadU64(ctlMagicOff) != ctlMagic {
		return "", false
	}
	return codeScheme(ctl.LoadU64(ctlSchemeOff))
}

// fastConfigFor / walConfigFor translate Options into the stores' configs —
// the single place the scheme string picks a variant or kind.
func fastConfigFor(opts Options) fast.Config {
	variant := fast.InPlaceCommit
	if opts.Scheme == SchemeFAST {
		variant = fast.SlotHeaderLogging
	}
	return fast.Config{PageSize: opts.PageSize, MaxPages: opts.MaxPages, Variant: variant}
}

func walConfigFor(opts Options) wal.Config {
	kind := wal.NVWAL
	switch opts.Scheme {
	case SchemeWAL:
		kind = wal.FullWAL
	case SchemeJournal:
		kind = wal.Journal
	}
	return wal.Config{PageSize: opts.PageSize, MaxPages: opts.MaxPages, Kind: kind}
}

// fastFamily reports whether a canonical scheme is served by fast.Store
// (shared arena layout across variants).
func fastFamily(scheme string) bool {
	return scheme == SchemeFASTPlus || scheme == SchemeFAST
}

// checkpointToCleanImage forces a store's committed state into its plain
// page image. WAL-family stores write every logged page home and truncate
// the log; FAST-family stores checkpoint eagerly at every commit and are
// already clean between transactions.
func checkpointToCleanImage(st pager.Store) {
	if cp, ok := st.(interface{ Checkpoint() }); ok {
		cp.Checkpoint()
	}
}

// storeMeta reads a store's cached page-zero metadata (current whenever the
// store is quiescent between transactions).
func storeMeta(st pager.Store) pager.Meta {
	if m, ok := st.(interface{ Meta() pager.Meta }); ok {
		return m.Meta()
	}
	return pager.Meta{}
}

// formatTargetArena creates and formats a fresh arena laid out for
// opts.Scheme on the shard's machine, returning the PM arena. Only the aux
// regions (free-page stack + slot-header log, or WAL master + log heap)
// matter: copyPages overwrites the page region with the source image.
func formatTargetArena(sys *pmem.System, opts Options) *pmem.Arena {
	if fastFamily(opts.Scheme) {
		return fast.Create(sys, fastConfigFor(opts)).Arena()
	}
	return wal.Create(sys, walConfigFor(opts)).Arena()
}

// copyPages copies the committed page image [0, NPages·PageSize) from the
// backend's live arena into na, persisting each page. The copy goes through
// the simulated cache (Load/Store), so it costs real simulated time and
// executes crash points like any other PM traffic.
func copyPages(be *shard.Backend, na *pmem.Arena, pageSize int) {
	n := storeMeta(be.Store).NPages
	buf := make([]byte, pageSize)
	for no := uint32(0); no < n; no++ {
		off := int64(no) * int64(pageSize)
		be.Arena.Load(off, buf)
		na.Store(off, buf)
		na.Persist(off, pageSize)
	}
}

// migrateStore switches one shard backend to the target commit scheme with a
// crash-safe protocol (DESIGN.md §11):
//
//  1. checkpoint the current scheme's log so the plain page image alone is
//     the complete committed state;
//  2. build the target image — fast+↔fast share the arena layout and reuse
//     the arena; across families a fresh arena is formatted for the target
//     scheme, the pages copied and persisted, and the copied free-list count
//     zeroed (neither family's free list survives the copy);
//  3. stage the new arena on the backend — the recovery metadata a real
//     system would keep beside the tag;
//  4. flip the persisted scheme tag — the atomic commit point;
//  5. attach the target store and fold the outgoing store's event counters
//     into the backend's monotonic base.
//
// A simulated power failure anywhere leaves the tag naming exactly one
// complete image: before the flip the old image is intact (the staged arena
// is discarded at recovery); after it, recovery adopts the staged arena.
// The caller (internal/shard) holds the shard quiescent: lock held, writer
// between group commits, optimistic readers drained.
func migrateStore(opts Options, be *shard.Backend, target string) (pager.Store, error) {
	if _, ok := schemeCode(target); !ok {
		return nil, badScheme(target)
	}
	if be.Ctl == nil {
		return nil, errors.New("fasp: scheme migration needs the scheme tag (AdaptiveScheme off)")
	}
	cur := strings.ToLower(be.Store.Name())
	if cur == target {
		return be.Store, nil
	}
	tgtOpts := opts
	tgtOpts.Scheme = target

	var ns pager.Store
	var err error
	be.Sys.Clock().InPhase(phaseMigrate, func() {
		checkpointToCleanImage(be.Store) // (1)

		if fastFamily(cur) && fastFamily(target) {
			// (2a) Same family: tag flip plus re-attach under the new variant.
			writeCtlTag(be.Ctl, target)
			if ns, err = attachStore(tgtOpts, be.Arena); err != nil {
				return
			}
			delta := storeCounters(be.Sys, be.Arena, be.Store)
			delta.Fence, delta.Flush = 0, 0 // same system, same arena: already monotonic
			be.EvBase = be.EvBase.Add(delta)
			return
		}

		// (2b) Cross family.
		na := formatTargetArena(be.Sys, tgtOpts)
		copyPages(be, na, opts.PageSize)
		// The WAL family keeps its free list volatile (FreeCount is never
		// persisted there) and the FAST family's free-page stack is not part
		// of the copied image, so the copied count is meaningless on the
		// target: zero it rather than let the target pop garbage. The
		// orphaned pages stay reclaimable through ReclaimExcept.
		pager.PokeFreeCount(na, 0, 0)
		be.Sys.Fence()

		be.NewArena, be.NewScheme = na, target              // (3)
		writeCtlTag(be.Ctl, target)                         // (4)
		if ns, err = attachStore(tgtOpts, na); err != nil { // (5)
			return
		}
		delta := storeCounters(be.Sys, be.Arena, be.Store)
		delta.Fence = 0 // fences are system-wide and survive the arena swap
		be.EvBase = be.EvBase.Add(delta)
		be.Arena = na
		be.NewArena, be.NewScheme = nil, ""
	})
	return ns, err
}

// reattachShard builds the sharded crash-recovery closure: resolve the
// persisted scheme tag (after a migration it overrides the configured
// scheme), adopt or discard a staged migration arena, and attach.
func reattachShard(opts Options) func(int, *shard.Backend) (pager.Store, error) {
	return func(_ int, be *shard.Backend) (pager.Store, error) {
		o := opts
		if s, ok := readCtlTag(be.Ctl); ok {
			o.Scheme = s
		}
		if be.NewArena != nil {
			if o.Scheme == be.NewScheme {
				// The crash landed after the tag flip: the staged image is
				// the committed one. Fold the outgoing store's events into
				// the monotonic base before abandoning its arena.
				delta := storeCounters(be.Sys, be.Arena, be.Store)
				delta.Fence = 0
				be.EvBase = be.EvBase.Add(delta)
				be.Arena = be.NewArena
			}
			be.NewArena, be.NewScheme = nil, ""
		}
		return attachStore(o, be.Arena)
	}
}

// tuneTemplate translates the adaptive Options into the controller template
// every shard copies, nil when no adaptive feature is on.
func tuneTemplate(opts Options) *tune.Config {
	if !opts.AdaptiveScheme && !opts.AdaptiveBatch && opts.DefragThreshold <= 0 {
		return nil
	}
	return &tune.Config{
		Scheme:      opts.Scheme,
		MaxBatch:    opts.MaxBatch,
		AdaptScheme: opts.AdaptiveScheme,
		AdaptBatch:  opts.AdaptiveBatch,
	}
}

// ShardScheme returns shard i's live commit scheme in canonical lower-case
// form ("fast+", "fast", "wal", ...). Under AdaptiveScheme it may differ
// from Options.Scheme. An out-of-range index is ErrBadShard.
func (kv *KV) ShardScheme(i int) (string, error) {
	if err := kv.checkShard(i); err != nil {
		return "", err
	}
	if kv.eng != nil {
		return kv.eng.ShardScheme(i), nil
	}
	return strings.ToLower(kv.store.Name()), nil
}

// ShardMaxBatch returns shard i's live group-commit drain bound; under
// AdaptiveBatch it moves within [max(1, MaxBatch/4), MaxBatch·4]. An
// out-of-range index is ErrBadShard.
func (kv *KV) ShardMaxBatch(i int) (int, error) {
	if err := kv.checkShard(i); err != nil {
		return 0, err
	}
	if kv.eng != nil {
		return kv.eng.ShardMaxBatch(i), nil
	}
	return kv.opts.MaxBatch, nil
}

// ShardFragmentation returns shard i's last measured committed-leaf
// fragmentation ratio (dead bytes / cell area), or -1 before any measurement
// or when DefragThreshold is off. An out-of-range index is ErrBadShard.
func (kv *KV) ShardFragmentation(i int) (float64, error) {
	if err := kv.checkShard(i); err != nil {
		return 0, err
	}
	if kv.eng != nil {
		return kv.eng.ShardFragmentation(i), nil
	}
	return -1, nil
}

// TuneTrace returns a copy of shard i's adaptive-controller decision trace —
// one entry per closed decision window, a pure function of the op sequence
// on the deterministic ApplyBatch path — or nil when adaptive tuning is off.
// An out-of-range index is ErrBadShard.
func (kv *KV) TuneTrace(i int) ([]TuneDecision, error) {
	if err := kv.checkShard(i); err != nil {
		return nil, err
	}
	if kv.eng != nil {
		return kv.eng.ShardTrace(i), nil
	}
	return nil, nil
}
