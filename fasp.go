// Package fasp is the public API of the failure-atomic slotted paging
// library — a Go reproduction of "Failure-Atomic Slotted Paging for
// Persistent Memory" (ASPLOS 2017).
//
// It bundles a simulated persistent-memory machine (internal/pmem), the
// paper's FAST and FAST+ commit schemes plus the NVWAL / WAL / rollback
// journal baselines, a slotted-page B-tree, and a small SQLite-like SQL
// engine, behind two entry points:
//
//   - Open — a SQL database (Exec/Query) on a chosen scheme;
//   - OpenKV — a raw ordered key/value store over the same B-tree.
//
// Both run on a deterministic simulated clock: configure PM latencies,
// run a workload, and read simulated-time phase breakdowns that reproduce
// the paper's figures. Crash / Reopen simulate power failure and recovery.
package fasp

import (
	"errors"
	"fmt"
	"strings"
	"sync"

	"fasp/internal/btree"
	"fasp/internal/engine"
	"fasp/internal/fast"
	"fasp/internal/hashidx"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/sql"
	"fasp/internal/wal"
)

// Scheme names accepted by Options.Scheme.
const (
	SchemeFASTPlus = "fast+"
	SchemeFAST     = "fast"
	SchemeNVWAL    = "nvwal"
	SchemeWAL      = "wal"
	SchemeJournal  = "journal"
)

// Options configures a database or KV store.
type Options struct {
	// Scheme selects the commit scheme (default "fast+").
	Scheme string
	// PageSize is the slotted-page size in bytes (default 4096).
	PageSize int
	// MaxPages bounds the page space (default 16384).
	MaxPages int
	// PMReadNS / PMWriteNS are the emulated PM latencies per cache line
	// (default 300/300, the paper's default point; DRAM is 120).
	PMReadNS, PMWriteNS int64
	// CacheBytes bounds the emulated CPU cache per arena (default 2 MiB).
	CacheBytes int64
}

// fill applies defaults and normalises Scheme to its canonical lower-case
// form, so the rest of the package compares it directly.
func (o *Options) fill() {
	if o.Scheme == "" {
		o.Scheme = SchemeFASTPlus
	}
	o.Scheme = strings.ToLower(o.Scheme)
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.MaxPages == 0 {
		o.MaxPages = 16384
	}
	if o.PMReadNS == 0 {
		o.PMReadNS = 300
	}
	if o.PMWriteNS == 0 {
		o.PMWriteNS = 300
	}
}

// Value is a SQL value in query results.
type Value = sql.Value

// Result is the outcome of one SQL statement.
type Result = engine.Result

// CrashOptions re-exports the crash eviction lottery configuration.
type CrashOptions = pmem.CrashOptions

// base carries the machinery shared by DB and KV. The mutex serialises all
// public operations: the simulated machine (clock, cache overlay) and the
// single-writer stores are not internally synchronised, so the facade
// provides SQLite-style one-at-a-time access that is safe to call from
// multiple goroutines.
type base struct {
	mu    sync.Mutex
	opts  Options
	sys   *pmem.System
	store pager.Store
	arena *pmem.Arena
}

func newBase(opts Options) (*base, error) {
	opts.fill()
	lat := pmem.DefaultLatencies(opts.PMReadNS, opts.PMWriteNS)
	lat.CacheBytes = opts.CacheBytes
	sys := pmem.NewSystem(lat)
	b := &base{opts: opts, sys: sys}
	switch opts.Scheme {
	case SchemeFASTPlus, SchemeFAST:
		variant := fast.InPlaceCommit
		if opts.Scheme == SchemeFAST {
			variant = fast.SlotHeaderLogging
		}
		st := fast.Create(sys, fast.Config{
			PageSize: opts.PageSize, MaxPages: opts.MaxPages, Variant: variant,
		})
		b.store, b.arena = st, st.Arena()
	case SchemeNVWAL, SchemeWAL, SchemeJournal:
		kind := wal.NVWAL
		switch opts.Scheme {
		case SchemeWAL:
			kind = wal.FullWAL
		case SchemeJournal:
			kind = wal.Journal
		}
		st := wal.Create(sys, wal.Config{
			PageSize: opts.PageSize, MaxPages: opts.MaxPages, Kind: kind,
		})
		b.store, b.arena = st, st.Arena()
	default:
		return nil, fmt.Errorf("fasp: unknown scheme %q", opts.Scheme)
	}
	return b, nil
}

// reattach rebuilds the store over the surviving arena after a crash.
func (b *base) reattach() error {
	switch st := b.store.(type) {
	case *fast.Store:
		variant := fast.InPlaceCommit
		if b.opts.Scheme == SchemeFAST {
			variant = fast.SlotHeaderLogging
		}
		ns, err := fast.Attach(b.arena, fast.Config{
			PageSize: b.opts.PageSize, MaxPages: b.opts.MaxPages, Variant: variant,
		})
		if err != nil {
			return err
		}
		b.store = ns
		_ = st
	case *wal.Store:
		kind := wal.NVWAL
		switch b.opts.Scheme {
		case SchemeWAL:
			kind = wal.FullWAL
		case SchemeJournal:
			kind = wal.Journal
		}
		ns, err := wal.Attach(b.arena, wal.Config{
			PageSize: b.opts.PageSize, MaxPages: b.opts.MaxPages, Kind: kind,
		})
		if err != nil {
			return err
		}
		b.store = ns
	default:
		return errors.New("fasp: unknown store type")
	}
	return b.recover()
}

func (b *base) recover() error {
	type recoverer interface{ Recover() error }
	if r, ok := b.store.(recoverer); ok {
		return r.Recover()
	}
	return nil
}

// System exposes the simulated machine (clock, latencies, crash control).
func (b *base) System() *pmem.System { return b.sys }

// SchemeName reports the active commit scheme.
func (b *base) SchemeName() string { return b.store.Name() }

// SimulatedNS returns the current simulated time in nanoseconds.
func (b *base) SimulatedNS() int64 { return b.sys.Clock().Now() }

// RawStore exposes the underlying pager store for inspection tooling
// (cmd/faspinspect); application code should not need it.
func (b *base) RawStore() pager.Store { return b.store }

// PMStats returns the persistent-memory arena's architectural event
// counters (line fills, stores, clflush calls, write-backs).
func (b *base) PMStats() pmem.Stats { return b.arena.Stats() }

// Crash simulates a power failure: volatile state is lost; each dirty PM
// cache line independently survives per the eviction lottery. Call Reopen
// (DB) / ReopenKV (KV) afterwards to run recovery.
func (b *base) Crash(opts CrashOptions) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sys.Crash(opts)
}

// DB is a SQL database on a simulated PM machine.
type DB struct {
	*base
	eng *engine.DB
}

// Open creates a fresh database with the given options.
func Open(opts Options) (*DB, error) {
	b, err := newBase(opts)
	if err != nil {
		return nil, err
	}
	return &DB{base: b, eng: engine.Open(b.store)}, nil
}

// Exec parses and executes a semicolon-separated SQL batch.
func (db *DB) Exec(src string) ([]Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Exec(src)
}

// MustExec runs Exec and panics on error (examples and tests).
func (db *DB) MustExec(src string) []Result {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.MustExec(src)
}

// Query runs one SELECT and returns its rows.
func (db *DB) Query(src string) ([][]Value, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.QueryRows(src)
}

// Tables lists the table names in the catalog.
func (db *DB) Tables() ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Tables()
}

// Schema returns a table's stored CREATE TABLE statement.
func (db *DB) Schema(table string) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Schema(table)
}

// Indexes lists the secondary-index names in the catalog.
func (db *DB) Indexes() ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Indexes()
}

// Reopen recovers the database after Crash, reattaching engine state.
func (db *DB) Reopen() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.reattach(); err != nil {
		return err
	}
	db.eng = engine.Open(db.store)
	return nil
}

// KV is an ordered key/value store over the failure-atomic B-tree —
// the paper's pager/B-tree layer without the SQL front end (the layer
// Figures 6–10 measure).
type KV struct {
	*base
	tree *btree.Tree
}

// OpenKV creates a fresh key/value store.
func OpenKV(opts Options) (*KV, error) {
	b, err := newBase(opts)
	if err != nil {
		return nil, err
	}
	return &KV{base: b, tree: btree.New(b.store)}, nil
}

// Put inserts or replaces key's value in one transaction.
func (kv *KV) Put(key, val []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	err := kv.tree.Insert(key, val)
	if err != nil && strings.Contains(err.Error(), "duplicate") {
		return kv.tree.Update(key, val)
	}
	return err
}

// Insert adds a new key, failing on duplicates.
func (kv *KV) Insert(key, val []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.tree.Insert(key, val)
}

// Get returns the value stored under key.
func (kv *KV) Get(key []byte) ([]byte, bool, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.tree.Get(key)
}

// Delete removes key.
func (kv *KV) Delete(key []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.tree.Delete(key)
}

// Scan visits keys in [lo, hi] in order (nil bounds are open).
func (kv *KV) Scan(lo, hi []byte, fn func(k, v []byte) bool) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.tree.Scan(lo, hi, fn)
}

// ScanReverse visits keys in [lo, hi] in descending order.
func (kv *KV) ScanReverse(lo, hi []byte, fn func(k, v []byte) bool) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	return tx.ScanReverse(lo, hi, fn)
}

// BatchTx is the operation set available inside a KV.Batch transaction.
type BatchTx interface {
	// Insert adds a new key, failing on duplicates.
	Insert(key, val []byte) error
	// Update replaces an existing key's value.
	Update(key, val []byte) error
	// Delete removes a key.
	Delete(key []byte) error
	// Get reads a key (including this transaction's own writes).
	Get(key []byte) ([]byte, bool, error)
	// Scan visits keys in [lo, hi] in order.
	Scan(lo, hi []byte, fn func(k, v []byte) bool) error
}

// Batch runs fn inside one transaction; all operations commit atomically.
func (kv *KV) Batch(fn func(tx BatchTx) error) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Validate checks full structural integrity of the tree.
func (kv *KV) Validate() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	return tx.Validate()
}

// Count returns the number of records.
func (kv *KV) Count() (int, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return 0, err
	}
	defer tx.Rollback()
	return tx.Count()
}

// ReopenKV recovers the store after Crash.
func (kv *KV) ReopenKV() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.reattach(); err != nil {
		return err
	}
	kv.tree = btree.New(kv.store)
	return nil
}

// Hash is a persistent hash index over failure-atomic slotted pages — the
// paper's observation that the persistent slotted-page optimisation also
// applies to hash-based indexes (§2.2). Buckets are chains of slotted
// pages; under FAST+ a single-page Put commits with one HTM cache-line
// write, exactly like a B-tree leaf insert.
type Hash struct {
	*base
	idx *hashidx.Index
}

// OpenHash creates a fresh hash index with the given bucket count.
func OpenHash(opts Options, buckets uint32) (*Hash, error) {
	b, err := newBase(opts)
	if err != nil {
		return nil, err
	}
	idx := hashidx.New(b.store)
	if err := idx.Create(buckets); err != nil {
		return nil, err
	}
	return &Hash{base: b, idx: idx}, nil
}

// Put inserts or replaces a key in one transaction.
func (h *Hash) Put(key, val []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Put(key, val)
}

// Get returns the value stored under key.
func (h *Hash) Get(key []byte) ([]byte, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Get(key)
}

// Delete removes key.
func (h *Hash) Delete(key []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Delete(key)
}

// Len counts the records.
func (h *Hash) Len() (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Len()
}

// Rehash rebuilds the index with a new bucket count in one transaction.
func (h *Hash) Rehash(buckets uint32) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Rehash(buckets)
}

// Validate checks structural integrity (pages, chains, hash placement).
func (h *Hash) Validate() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Validate()
}

// ReopenHash recovers the index after Crash.
func (h *Hash) ReopenHash() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.reattach(); err != nil {
		return err
	}
	h.idx = hashidx.New(h.store)
	return nil
}
