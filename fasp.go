// Package fasp is the public API of the failure-atomic slotted paging
// library — a Go reproduction of "Failure-Atomic Slotted Paging for
// Persistent Memory" (ASPLOS 2017).
//
// It bundles a simulated persistent-memory machine (internal/pmem), the
// paper's FAST and FAST+ commit schemes plus the NVWAL / WAL / rollback
// journal baselines, a slotted-page B-tree, and a small SQLite-like SQL
// engine, behind two entry points:
//
//   - Open — a SQL database (Exec/Query) on a chosen scheme;
//   - OpenKV — a raw ordered key/value store over the same B-tree.
//
// Both run on a deterministic simulated clock: configure PM latencies,
// run a workload, and read simulated-time phase breakdowns that reproduce
// the paper's figures. Crash / Reopen simulate power failure and recovery.
package fasp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fasp/internal/btree"
	"fasp/internal/engine"
	"fasp/internal/fast"
	"fasp/internal/hashidx"
	"fasp/internal/obsv"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/shard"
	"fasp/internal/sql"
	"fasp/internal/wal"
)

// Scheme names accepted by Options.Scheme.
const (
	SchemeFASTPlus = "fast+"
	SchemeFAST     = "fast"
	SchemeNVWAL    = "nvwal"
	SchemeWAL      = "wal"
	SchemeJournal  = "journal"
)

// ErrBadScheme reports an Options.Scheme naming no commit scheme. Open,
// OpenKV, and OpenHash return it (wrapped — test with errors.Is) instead of
// constructing a store; names are case-insensitive.
var ErrBadScheme = errors.New("fasp: unknown scheme")

// badScheme wraps ErrBadScheme with the offending name and the valid set.
func badScheme(scheme string) error {
	return fmt.Errorf("%w %q (schemes: %s, %s, %s, %s, %s)", ErrBadScheme,
		scheme, SchemeFASTPlus, SchemeFAST, SchemeNVWAL, SchemeWAL, SchemeJournal)
}

// Options configures a database or KV store.
type Options struct {
	// Scheme selects the commit scheme (default "fast+").
	Scheme string
	// PageSize is the slotted-page size in bytes (default 4096).
	PageSize int
	// MaxPages bounds the page space (default 16384). In sharded mode the
	// bound applies to each shard's independent page space.
	MaxPages int
	// PMReadNS / PMWriteNS are the emulated PM latencies per cache line
	// (default 300/300, the paper's default point; DRAM is 120). 0 selects
	// the default; pass -1 for an explicitly zero-latency (DRAM-instant)
	// medium, which 0 cannot express.
	PMReadNS, PMWriteNS int64
	// CacheBytes bounds the emulated CPU cache per arena (default 2 MiB).
	CacheBytes int64
	// Shards hash-partitions the KV key space across this many independent
	// stores, each on its own simulated machine with a single-writer
	// goroutine and group commit (see OpenKV). 0 or 1 keeps the classic
	// single store; Open and OpenHash ignore the field.
	Shards int
	// MaxBatch is the group-commit drain bound: how many operations one
	// sharded group commit may take from a shard's mailbox (default 64),
	// and the chunk size KV.ApplyBatch commits at in both modes. With
	// AdaptiveBatch it is only the starting point — each shard's live bound
	// then moves within [max(1, MaxBatch/4), MaxBatch*4] (AIMD), and both
	// the writers and ApplyBatch chunk at the shard's live bound. Otherwise
	// ignored when Shards <= 1, except by ApplyBatch.
	MaxBatch int
	// EnqueueTimeout bounds how long a sharded submission waits for
	// mailbox space before failing with ErrShardBusy (default 2s).
	// Ignored when Shards <= 1.
	EnqueueTimeout time.Duration
	// DisableMetrics turns the observability recorder off entirely (KV
	// only). Metrics are on by default; the instrumented hot path is
	// allocation-free either way, so disabling only saves a few atomic
	// adds per operation.
	DisableMetrics bool
	// MetricsSampleEvery samples every Nth transaction's full commit-path
	// event counts into the trace ring (default 64).
	MetricsSampleEvery int
	// SlowOpNS is the wall-clock latency threshold above which an
	// operation lands in the slow-op log (default 1ms).
	SlowOpNS int64
	// DisableOptimisticReads forces every sharded read through the locked
	// per-shard path instead of the epoch-pinned optimistic path — the
	// baseline arm for read-scaling benchmarks, and an escape hatch.
	// Ignored when Shards <= 1.
	DisableOptimisticReads bool
	// AdaptiveScheme lets each shard's controller migrate its commit scheme
	// online among fast+ / fast / wal from observed workload shape
	// (single-leaf ratio, HTM abort rate, batch size), starting from
	// Scheme. Migrations are crash-safe: a persisted per-shard scheme tag
	// is the commit point and recovery resolves it (see DESIGN.md §11).
	// Ignored when Shards <= 1.
	AdaptiveScheme bool
	// AdaptiveBatch adapts each shard's group-commit drain bound by AIMD
	// within [max(1, MaxBatch/4), MaxBatch*4], from mailbox depth and
	// enqueue backoff pressure. Ignored when Shards <= 1.
	AdaptiveBatch bool
	// DefragThreshold > 0 enables proactive copy-on-write defragmentation:
	// at every adaptive decision window the shard measures its committed
	// leaves' dead-byte ratio, and when a leaf's ratio reaches the
	// threshold it is rewritten during idle group-commit slots. Sensible
	// values are 0.2–0.5. Ignored when Shards <= 1.
	DefragThreshold float64
	// FaultHook, when set on a sharded store, runs at the top of every
	// group commit with the shard index, inside the contained writer
	// section — the fault-injection harness's entry point (see
	// internal/faultx): a panic degrades that one shard until Heal, a
	// sleep stalls its batch while the others keep serving. Production
	// leaves it nil. Ignored when Shards <= 1.
	FaultHook func(shard int)
}

// fill applies defaults and normalises Scheme to its canonical lower-case
// form, so the rest of the package compares it directly. It is idempotent:
// the -1 latency sentinel survives so that re-filling (each shard's
// backend fills the same Options) cannot turn an explicit zero back into
// the 300 ns default; newBase clamps the sentinel when building the model.
func (o *Options) fill() {
	if o.Scheme == "" {
		o.Scheme = SchemeFASTPlus
	}
	o.Scheme = strings.ToLower(o.Scheme)
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	if o.MaxPages == 0 {
		o.MaxPages = 16384
	}
	if o.PMReadNS == 0 {
		o.PMReadNS = 300
	}
	if o.PMWriteNS == 0 {
		o.PMWriteNS = 300
	}
	if o.Shards < 1 {
		o.Shards = 1
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = shard.DefaultMaxBatch
	}
}

// latNS resolves a latency field: -1 is the explicit-zero sentinel.
func latNS(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// Value is a SQL value in query results.
type Value = sql.Value

// Result is the outcome of one SQL statement.
type Result = engine.Result

// CrashOptions re-exports the crash eviction lottery configuration.
type CrashOptions = pmem.CrashOptions

// base carries the machinery shared by DB and KV. The mutex serialises all
// public operations: the simulated machine (clock, cache overlay) and the
// single-writer stores are not internally synchronised, so the facade
// provides SQLite-style one-at-a-time access that is safe to call from
// multiple goroutines.
type base struct {
	mu    sync.Mutex
	opts  Options
	sys   *pmem.System
	store pager.Store
	arena *pmem.Arena
}

func newBase(opts Options) (*base, error) {
	opts.fill()
	lat := pmem.DefaultLatencies(latNS(opts.PMReadNS), latNS(opts.PMWriteNS))
	lat.CacheBytes = opts.CacheBytes
	sys := pmem.NewSystem(lat)
	b := &base{opts: opts, sys: sys}
	switch opts.Scheme {
	case SchemeFASTPlus, SchemeFAST:
		st := fast.Create(sys, fastConfigFor(opts))
		b.store, b.arena = st, st.Arena()
	case SchemeNVWAL, SchemeWAL, SchemeJournal:
		st := wal.Create(sys, walConfigFor(opts))
		b.store, b.arena = st, st.Arena()
	default:
		return nil, badScheme(opts.Scheme)
	}
	return b, nil
}

// attachStore rebuilds a store of opts.Scheme over an existing arena
// (after a crash or a snapshot restore) and runs the scheme's recovery.
// It is the shared reattach path of the single-store facade and of every
// shard in a sharded KV.
func attachStore(opts Options, arena *pmem.Arena) (pager.Store, error) {
	switch opts.Scheme {
	case SchemeFASTPlus, SchemeFAST:
		ns, err := fast.Attach(arena, fastConfigFor(opts))
		if err != nil {
			return nil, err
		}
		return ns, ns.Recover()
	case SchemeNVWAL, SchemeWAL, SchemeJournal:
		ns, err := wal.Attach(arena, walConfigFor(opts))
		if err != nil {
			return nil, err
		}
		return ns, ns.Recover()
	}
	return nil, badScheme(opts.Scheme)
}

// reattach rebuilds the store over the surviving arena after a crash.
func (b *base) reattach() error {
	ns, err := attachStore(b.opts, b.arena)
	if err != nil {
		return err
	}
	b.store = ns
	return nil
}

// System exposes the simulated machine (clock, latencies, crash control).
func (b *base) System() *pmem.System { return b.sys }

// SchemeName reports the active commit scheme.
func (b *base) SchemeName() string { return b.store.Name() }

// SimulatedNS returns the current simulated time in nanoseconds.
func (b *base) SimulatedNS() int64 { return b.sys.Clock().Now() }

// RawStore exposes the underlying pager store for inspection tooling
// (cmd/faspinspect); application code should not need it.
func (b *base) RawStore() pager.Store { return b.store }

// PMStats returns the persistent-memory arena's architectural event
// counters (line fills, stores, clflush calls, write-backs).
func (b *base) PMStats() pmem.Stats { return b.arena.Stats() }

// Crash simulates a power failure: volatile state is lost; each dirty PM
// cache line independently survives per the eviction lottery. Call Reopen
// (DB) / ReopenKV (KV) afterwards to run recovery.
func (b *base) Crash(opts CrashOptions) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sys.Crash(opts)
}

// DB is a SQL database on a simulated PM machine.
type DB struct {
	*base
	eng *engine.DB
}

// Open creates a fresh database with the given options.
func Open(opts Options) (*DB, error) {
	b, err := newBase(opts)
	if err != nil {
		return nil, err
	}
	return &DB{base: b, eng: engine.Open(b.store)}, nil
}

// Exec parses and executes a semicolon-separated SQL batch.
func (db *DB) Exec(src string) ([]Result, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Exec(src)
}

// MustExec runs Exec and panics on error (examples and tests).
func (db *DB) MustExec(src string) []Result {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.MustExec(src)
}

// Query runs one SELECT and returns its rows.
func (db *DB) Query(src string) ([][]Value, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.QueryRows(src)
}

// Tables lists the table names in the catalog.
func (db *DB) Tables() ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Tables()
}

// Schema returns a table's stored CREATE TABLE statement.
func (db *DB) Schema(table string) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Schema(table)
}

// Indexes lists the secondary-index names in the catalog.
func (db *DB) Indexes() ([]string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.eng.Indexes()
}

// Reopen recovers the database after Crash, reattaching engine state.
func (db *DB) Reopen() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.reattach(); err != nil {
		return err
	}
	db.eng = engine.Open(db.store)
	return nil
}

// KV is an ordered key/value store over the failure-atomic B-tree —
// the paper's pager/B-tree layer without the SQL front end (the layer
// Figures 6–10 measure).
//
// With Options.Shards > 1 the store becomes a sharded engine: keys are
// hash-partitioned across independent stores, each on its own simulated
// machine, owned by a single-writer goroutine that drains a bounded
// mailbox and group-commits each drained batch as one transaction
// (internal/shard). Concurrent callers then run in parallel across shards
// and are batched within one. Shards == 1 keeps the classic single store
// with SQLite-style one-at-a-time access and bit-identical simulated
// time. Sharded stores hold goroutines: call Close when done.
type KV struct {
	*base               // single-store mode; nil when sharded
	tree  *btree.Tree   // single-store mode; nil when sharded
	eng   *shard.Engine // sharded mode; nil when single-store
	opts  Options

	// rec is the observability recorder (nil with DisableMetrics); regName
	// is the store's name in the exporter registry; closed makes Close
	// idempotent.
	rec     *obsv.Recorder
	regName string
	closed  atomic.Bool

	// crashed tracks a single store's post-Crash state (the sharded engine
	// tracks health per shard itself), so Heal and ShardStats can tell a
	// healthy store from one awaiting recovery.
	crashed atomic.Bool
}

// Op and OpKind re-export the sharded engine's operation type, used by
// ApplyBatch in both modes.
type (
	Op     = shard.Op
	OpKind = shard.OpKind
)

// Operation kinds for ApplyBatch.
const (
	OpPut    = shard.OpPut
	OpInsert = shard.OpInsert
	OpUpdate = shard.OpUpdate
	OpDelete = shard.OpDelete
)

// ErrShardCrashed reports an operation submitted to a crashed shard that
// has not been recovered yet (call ReopenKV).
var ErrShardCrashed = shard.ErrCrashed

// ErrShardDown reports an operation submitted to a shard whose writer hit
// a contained fault (store panic / hard PM error); the other shards keep
// serving. Call Heal on the degraded shard to re-run recovery.
var ErrShardDown = shard.ErrShardDown

// ErrShardBusy reports a sharded submission that timed out waiting for
// mailbox space (wedged or badly oversubscribed shard); the operation was
// not applied.
var ErrShardBusy = shard.ErrBusy

// errCrossShard reports KV.Batch on a sharded store.
var errCrossShard = errors.New("fasp: cross-shard transactions are not supported on a sharded store; use ApplyBatch for per-shard group commits")

// OpenKV creates a fresh key/value store (sharded when opts.Shards > 1).
func OpenKV(opts Options) (*KV, error) {
	opts.fill()
	rec := newRecorder(opts)
	var kv *KV
	if opts.Shards <= 1 {
		b, err := newBase(opts)
		if err != nil {
			return nil, err
		}
		kv = &KV{base: b, tree: btree.New(b.store), opts: opts, rec: rec}
	} else {
		eng, err := newShardEngine(opts, rec)
		if err != nil {
			return nil, err
		}
		kv = &KV{eng: eng, opts: opts, rec: rec}
	}
	registerKV(kv)
	return kv, nil
}

// newShardEngine wires the scheme-agnostic sharded engine to this
// package's store constructors: every shard is a full newBase backend on
// its own simulated machine, and reattach after a crash goes through the
// same attachStore path the single-store facade uses — made tag-aware by
// reattachShard, since under AdaptiveScheme a shard's live scheme is
// whatever its persisted scheme tag names, not Options.Scheme.
func newShardEngine(opts Options, rec *obsv.Recorder) (*shard.Engine, error) {
	var migrate func(int, *shard.Backend, string) (pager.Store, error)
	if opts.AdaptiveScheme {
		migrate = func(_ int, be *shard.Backend, target string) (pager.Store, error) {
			return migrateStore(opts, be, target)
		}
	}
	return shard.New(shard.Config{
		Shards:            opts.Shards,
		MaxBatch:          opts.MaxBatch,
		EnqueueTimeout:    opts.EnqueueTimeout,
		NoOptimisticReads: opts.DisableOptimisticReads,
		Open: func(int) (*shard.Backend, error) {
			b, err := newBase(opts)
			if err != nil {
				return nil, err
			}
			be := &shard.Backend{Sys: b.sys, Arena: b.arena, Store: b.store}
			if opts.AdaptiveScheme {
				be.Ctl = newCtlArena(b.sys, opts.Scheme)
			}
			return be, nil
		},
		Reattach: reattachShard(opts),
		Recorder: rec,
		Counters: func(_ int, be *shard.Backend) obsv.Counters {
			// EvBase folds in the event totals of stores retired by scheme
			// migrations, keeping the deltas the recorder sees monotonic.
			return storeCounters(be.Sys, be.Arena, be.Store).Add(be.EvBase)
		},
		Tune:            tuneTemplate(opts),
		Migrate:         migrate,
		DefragThreshold: opts.DefragThreshold,
		FaultHook:       opts.FaultHook,
	})
}

// Close stops a sharded store's writer goroutines after serving every
// queued operation and unregisters the store from the metrics exporter.
// It is idempotent — safe to call twice, concurrently, and after a
// crashed or degraded shard. Write operations submitted after Close fail
// with ErrClosed (sharded mode); single-store reads and writes keep
// working, as the single store holds no goroutines to stop.
func (kv *KV) Close() {
	if kv.closed.Swap(true) {
		return
	}
	unregisterKV(kv)
	if kv.eng != nil {
		kv.eng.Close()
	}
}

// Sharded reports whether the store is hash-partitioned.
func (kv *KV) Sharded() bool { return kv.eng != nil }

// Shards returns the shard count (1 for a single store).
func (kv *KV) Shards() int {
	if kv.eng != nil {
		return kv.eng.Shards()
	}
	return 1
}

// MaxBatch returns the group-commit drain bound ApplyBatch (and, when
// sharded, the writer goroutines) chunk at.
func (kv *KV) MaxBatch() int {
	if kv.eng != nil {
		return kv.eng.MaxBatch()
	}
	return kv.opts.MaxBatch
}

// ShardOf returns the shard index key routes to: the engine's FNV-1a
// placement on a sharded store, always 0 on a single store. It is
// deterministic and stable for the life of the store (the hash is part of
// the on-disk contract), so callers may pre-partition work by shard —
// the server's per-shard commit pipelines do exactly that.
func (kv *KV) ShardOf(key []byte) int {
	if kv.eng != nil {
		return kv.eng.ShardFor(key)
	}
	return 0
}

// SubmitShard applies ops — every key must route to shard si under
// ShardOf — as one submission on that shard's writer, blocking until errs
// (len(ops)) is filled. It is the per-shard pipeline entry point: unlike
// DoBatch there is no cross-shard barrier, and the request carries the
// caller's slices directly (zero-copy), so the caller must not touch ops
// or errs until it returns. On a single store it falls back to the locked
// deterministic batch path.
func (kv *KV) SubmitShard(si int, ops []Op, errs []error) {
	if kv.eng != nil {
		kv.eng.SubmitShard(si, ops, errs)
		return
	}
	copy(errs, kv.ApplyBatch(ops))
}

// SimClocks fills dst (grown if needed) with each shard's simulated clock
// as of its last completed mutation — the lock-free per-device time
// samples the serving layer's makespan accounting needs. It returns nil
// on a single store.
func (kv *KV) SimClocks(dst []int64) []int64 {
	if kv.eng != nil {
		return kv.eng.SimClocks(dst)
	}
	return nil
}

// Put inserts or replaces key's value in one transaction — a single
// upsert either way, so per-op phase accounting matches the sharded
// path's OpPut (which has always upserted inside one transaction) instead
// of paying Insert-then-Update's two commits on an existing key.
func (kv *KV) Put(key, val []byte) error {
	if kv.eng != nil {
		return kv.eng.Do(Op{Kind: OpPut, Key: key, Val: val})
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	sp := kv.beginOp()
	err := kv.tree.Put(key, val)
	kv.endOp(sp, obsv.OpPut)
	return err
}

// Insert adds a new key, failing on duplicates.
func (kv *KV) Insert(key, val []byte) error {
	if kv.eng != nil {
		return kv.eng.Do(Op{Kind: OpInsert, Key: key, Val: val})
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	sp := kv.beginOp()
	err := kv.tree.Insert(key, val)
	kv.endOp(sp, obsv.OpInsert)
	return err
}

// Get returns the value stored under key.
func (kv *KV) Get(key []byte) ([]byte, bool, error) {
	if kv.eng != nil {
		return kv.eng.Get(key)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	sp := kv.beginOp()
	v, ok, err := kv.tree.Get(key)
	kv.endOp(sp, obsv.OpGet)
	return v, ok, err
}

// GetInto is Get with a caller-supplied destination buffer: on a sharded
// store's optimistic read path the value is appended to dst[:0], so a
// steady-state reader that recycles its buffer performs no heap
// allocation. The locked fallbacks (single store, unhealthy shard,
// optimism disabled) ignore dst and allocate as Get does.
func (kv *KV) GetInto(key, dst []byte) ([]byte, bool, error) {
	if kv.eng != nil {
		return kv.eng.GetInto(key, dst)
	}
	return kv.Get(key)
}

// Delete removes key.
func (kv *KV) Delete(key []byte) error {
	if kv.eng != nil {
		return kv.eng.Do(Op{Kind: OpDelete, Key: key})
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	sp := kv.beginOp()
	err := kv.tree.Delete(key)
	kv.endOp(sp, obsv.OpDelete)
	return err
}

// ApplyBatch applies ops as group commits of at most Options.MaxBatch
// operations per transaction, returning per-op errors aligned with ops.
// On a sharded store the ops are partitioned by shard and each shard's
// sub-batch is applied in submission order, in ascending shard order —
// batch boundaries (and therefore simulated time) are a pure function of
// the op sequence, unlike the concurrent mailbox path. Logical failures
// (duplicate insert, absent key) are reported per op without aborting
// their batch; see internal/shard.ApplyOps.
func (kv *KV) ApplyBatch(ops []Op) []error {
	if kv.eng != nil {
		return kv.eng.ApplyBatch(ops)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	errs := make([]error, len(ops))
	sp := kv.beginOp()
	shard.ApplyOps(kv.tree, kv.opts.MaxBatch, ops, errs)
	if kv.rec != nil {
		kv.rec.EndBatch(sp, 0, len(ops), kv.sys.Clock().Now(), storeCounters(kv.sys, kv.arena, kv.store))
	}
	return errs
}

// DoBatch submits ops through the concurrent group-commit path: on a
// sharded store the ops are partitioned by shard and enqueued on the shard
// mailboxes, where the single-writer goroutines drain them — together with
// any other caller's concurrent submissions — into combined failure-atomic
// transactions (cross-caller group commit). Per-op errors are returned
// aligned with ops once every shard's verdicts are in. Unlike ApplyBatch,
// batch boundaries depend on runtime interleaving, so simulated time is
// not reproducible; servers and other concurrent callers should prefer
// DoBatch, deterministic harnesses ApplyBatch. On a single store it is
// ApplyBatch (the facade mutex is the only batching there).
func (kv *KV) DoBatch(ops []Op) []error {
	if kv.eng != nil {
		return kv.eng.DoBatch(ops)
	}
	return kv.ApplyBatch(ops)
}

// Closed reports whether Close has begun.
func (kv *KV) Closed() bool { return kv.closed.Load() }

// Scan visits keys in [lo, hi] in order (nil bounds are open). On a
// sharded store the per-shard streams are collected and k-way merged, so
// the global order is identical to the single-store order.
func (kv *KV) Scan(lo, hi []byte, fn func(k, v []byte) bool) error {
	if kv.eng != nil {
		return kv.eng.Scan(lo, hi, fn)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	sp := kv.beginOp()
	err := kv.tree.Scan(lo, hi, fn)
	kv.endOp(sp, obsv.OpScan)
	return err
}

// ScanReverse visits keys in [lo, hi] in descending order.
func (kv *KV) ScanReverse(lo, hi []byte, fn func(k, v []byte) bool) error {
	if kv.eng != nil {
		return kv.eng.ScanReverse(lo, hi, fn)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	return tx.ScanReverse(lo, hi, fn)
}

// BatchTx is the operation set available inside a KV.Batch transaction.
type BatchTx interface {
	// Insert adds a new key, failing on duplicates.
	Insert(key, val []byte) error
	// Update replaces an existing key's value.
	Update(key, val []byte) error
	// Delete removes a key.
	Delete(key []byte) error
	// Get reads a key (including this transaction's own writes).
	Get(key []byte) ([]byte, bool, error)
	// Scan visits keys in [lo, hi] in order.
	Scan(lo, hi []byte, fn func(k, v []byte) bool) error
}

// Batch runs fn inside one transaction; all operations commit atomically.
// A sharded store cannot offer cross-shard atomicity and rejects Batch;
// use ApplyBatch for per-shard group commits.
func (kv *KV) Batch(fn func(tx BatchTx) error) error {
	if kv.eng != nil {
		return errCrossShard
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return err
	}
	if err := fn(tx); err != nil {
		tx.Rollback()
		return err
	}
	return tx.Commit()
}

// Validate checks full structural integrity of the tree (every shard's
// tree on a sharded store).
func (kv *KV) Validate() error {
	if kv.eng != nil {
		return kv.eng.Validate()
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	return tx.Validate()
}

// Count returns the number of records (summed across shards).
func (kv *KV) Count() (int, error) {
	if kv.eng != nil {
		return kv.eng.Count()
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	tx, err := kv.tree.Begin()
	if err != nil {
		return 0, err
	}
	defer tx.Rollback()
	return tx.Count()
}

// checkShard validates a per-shard accessor's index: [0, Shards()), so on
// a single store only index 0 is accepted (it aliases the whole store).
func (kv *KV) checkShard(i int) error {
	if n := kv.Shards(); i < 0 || i >= n {
		return fmt.Errorf("%w: %d (store has %d shard(s))", ErrBadShard, i, n)
	}
	return nil
}

// Heal re-runs recovery on one shard of a sharded store — the containment
// path after ErrShardDown: the degraded shard reattaches over its arena
// while the healthy shards keep serving. Heal on a HEALTHY shard is a
// documented no-op returning nil: recovery is only re-run when the shard
// actually stopped serving, so a background healer can call it
// unconditionally without churning stores under live readers. On a single
// store, Heal(0) after Crash is equivalent to ReopenKV. An out-of-range
// index is ErrBadShard.
func (kv *KV) Heal(i int) error {
	if err := kv.checkShard(i); err != nil {
		return err
	}
	if kv.eng != nil {
		if kv.eng.ShardInfo(i).Health == shard.Healthy {
			return nil
		}
		return kv.eng.Heal(i)
	}
	if !kv.crashed.Load() {
		return nil
	}
	return kv.ReopenKV()
}

// ReopenKV recovers the store after Crash (every shard when sharded).
func (kv *KV) ReopenKV() error {
	if kv.eng != nil {
		return kv.eng.Reopen()
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if err := kv.reattach(); err != nil {
		return err
	}
	kv.tree = btree.New(kv.store)
	kv.crashed.Store(false)
	return nil
}

// Crash simulates a power failure. On a sharded store it hits every
// shard: each shard's machine runs the eviction lottery with the seed
// decorrelated per shard, and in-flight group commits finish first (the
// crash lands on batch boundaries; arm ShardSystem(i).CrashAfter before
// traffic to fail inside a batch). Call ReopenKV to recover.
func (kv *KV) Crash(opts CrashOptions) {
	if kv.eng != nil {
		kv.eng.Crash(opts)
		return
	}
	kv.base.Crash(opts)
	kv.crashed.Store(true)
}

// SchemeName reports the active commit scheme.
func (kv *KV) SchemeName() string {
	if kv.eng != nil {
		return kv.eng.ShardStore(0).Name()
	}
	return kv.base.SchemeName()
}

// System exposes the simulated machine. A sharded store has one machine
// per shard and returns nil here; use ShardSystem.
func (kv *KV) System() *pmem.System {
	if kv.eng != nil {
		return nil
	}
	return kv.base.System()
}

// ShardSystem returns shard i's simulated machine (shard 0 is the only
// shard of a single store, aliasing System). Crash-injection harnesses
// arm it before concurrent traffic starts; the machine is only
// synchronised by the engine's shard lock. An out-of-range index is
// ErrBadShard — it used to panic (sharded) or silently alias the whole
// store (single).
func (kv *KV) ShardSystem(i int) (*pmem.System, error) {
	if err := kv.checkShard(i); err != nil {
		return nil, err
	}
	if kv.eng != nil {
		return kv.eng.ShardSys(i), nil
	}
	return kv.base.System(), nil
}

// RawStore exposes the underlying pager store for inspection tooling.
// A sharded store has one store per shard and returns nil; use ShardStore.
func (kv *KV) RawStore() pager.Store {
	if kv.eng != nil {
		return nil
	}
	return kv.base.RawStore()
}

// ShardStore returns shard i's pager store for inspection tooling (shard
// 0 of a single store aliases RawStore). An out-of-range index is
// ErrBadShard.
func (kv *KV) ShardStore(i int) (pager.Store, error) {
	if err := kv.checkShard(i); err != nil {
		return nil, err
	}
	if kv.eng != nil {
		return kv.eng.ShardStore(i), nil
	}
	return kv.base.RawStore(), nil
}

// SimulatedNS returns the simulated time: on a sharded store, the slowest
// shard's clock — the elapsed time of the sharded system, since shards
// run in parallel on independent machines.
func (kv *KV) SimulatedNS() int64 {
	if kv.eng != nil {
		return kv.eng.Stats().SimMaxNS
	}
	return kv.base.SimulatedNS()
}

// PMStats returns the PM arenas' architectural event counters (summed
// across shards).
func (kv *KV) PMStats() pmem.Stats {
	if kv.eng != nil {
		return kv.eng.Stats().PM
	}
	return kv.base.PMStats()
}

// Phases returns the simulated-time phase breakdown (summed across
// shards): total simulated work per phase.
func (kv *KV) Phases() map[string]int64 {
	if kv.eng != nil {
		return kv.eng.Phases()
	}
	return kv.base.System().Clock().Phases()
}

// ShardInfo is one shard's observable state.
type ShardInfo = shard.Info

// ShardStats returns shard i's simulated time, op/batch counters, PM
// stats, and phase breakdown. On a single store, shard 0 reports the
// whole store (with no batch counters — group commit is a sharded-engine
// notion there). An out-of-range index is ErrBadShard.
func (kv *KV) ShardStats(i int) (ShardInfo, error) {
	if err := kv.checkShard(i); err != nil {
		return ShardInfo{}, err
	}
	if kv.eng != nil {
		return kv.eng.ShardInfo(i), nil
	}
	in := ShardInfo{
		SimNS:  kv.base.SimulatedNS(),
		PM:     kv.base.PMStats(),
		Phases: kv.base.System().Clock().Phases(),
	}
	if kv.crashed.Load() {
		in.Health = shard.Crashed
	}
	return in, nil
}

// EngineStats aggregates the sharded engine's counters (zero value on a
// single store).
func (kv *KV) EngineStats() shard.Stats {
	if kv.eng != nil {
		return kv.eng.Stats()
	}
	return shard.Stats{Shards: 1, SimMaxNS: kv.base.SimulatedNS(), SimSumNS: kv.base.SimulatedNS(), PM: kv.base.PMStats()}
}

// ShardScan visits shard i's records in [lo, hi] in ascending order —
// per-shard contents for tooling and the golden determinism tests. An
// out-of-range index is ErrBadShard.
func (kv *KV) ShardScan(i int, lo, hi []byte, fn func(k, v []byte) bool) error {
	if err := kv.checkShard(i); err != nil {
		return err
	}
	if kv.eng != nil {
		return kv.eng.ScanShard(i, lo, hi, fn)
	}
	kv.mu.Lock()
	defer kv.mu.Unlock()
	return kv.tree.Scan(lo, hi, fn)
}

// Hash is a persistent hash index over failure-atomic slotted pages — the
// paper's observation that the persistent slotted-page optimisation also
// applies to hash-based indexes (§2.2). Buckets are chains of slotted
// pages; under FAST+ a single-page Put commits with one HTM cache-line
// write, exactly like a B-tree leaf insert.
type Hash struct {
	*base
	idx *hashidx.Index
}

// OpenHash creates a fresh hash index with the given bucket count.
func OpenHash(opts Options, buckets uint32) (*Hash, error) {
	b, err := newBase(opts)
	if err != nil {
		return nil, err
	}
	idx := hashidx.New(b.store)
	if err := idx.Create(buckets); err != nil {
		return nil, err
	}
	return &Hash{base: b, idx: idx}, nil
}

// Put inserts or replaces a key in one transaction.
func (h *Hash) Put(key, val []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Put(key, val)
}

// Get returns the value stored under key.
func (h *Hash) Get(key []byte) ([]byte, bool, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Get(key)
}

// Delete removes key.
func (h *Hash) Delete(key []byte) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Delete(key)
}

// Len counts the records.
func (h *Hash) Len() (int, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Len()
}

// Rehash rebuilds the index with a new bucket count in one transaction.
func (h *Hash) Rehash(buckets uint32) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Rehash(buckets)
}

// Validate checks structural integrity (pages, chains, hash placement).
func (h *Hash) Validate() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.idx.Validate()
}

// ReopenHash recovers the index after Crash.
func (h *Hash) ReopenHash() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if err := h.reattach(); err != nil {
		return err
	}
	h.idx = hashidx.New(h.store)
	return nil
}
