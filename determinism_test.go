package fasp_test

// The golden determinism test pins the simulated-time behavior of the whole
// stack: the deterministic clock, the latency accounting, the cache overlay's
// hit/miss/eviction behavior, and the crash-lottery semantics. Wall-clock
// optimisations of the PM emulation (slab allocators, handle recycling,
// scratch buffers) must NOT change any number in testdata/golden.json —
// simulated results stay bit-identical while the emulation gets faster.
//
// Regenerate (only when simulated behavior is *intentionally* changed):
//
//	go test -run TestGoldenDeterminism -update-golden .

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fasp"
	"fasp/internal/btree"
	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/wal"
	"fasp/internal/workload"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden.json from the current behavior")

// goldenRecord captures every observable output of the fixed workload on one
// scheme: simulated time, phase breakdowns, architectural event counters,
// overlay occupancy, and a content checksum of the surviving tree.
type goldenRecord struct {
	SimNS       int64            `json:"sim_ns"`
	Fences      int64            `json:"fences"`
	CrashPoints int64            `json:"crash_points"`
	Resident    int              `json:"resident_lines"`
	Dirty       int              `json:"dirty_lines"`
	Count       int              `json:"count"`
	TreeSum     uint64           `json:"tree_sum"`
	PM          pmem.Stats       `json:"pm_stats"`
	Phases      map[string]int64 `json:"phases"`
}

// goldenSchemes lists the five commit schemes under test.
var goldenSchemes = []string{"NVWAL", "FAST", "FAST+", "WAL", "Journal"}

// goldenEnv builds a machine with a deliberately small CPU-cache overlay
// (256 lines) so the workload churns through FIFO eviction, and page-size
// 1024 so it splits often.
func goldenEnv(scheme string) (*pmem.System, pager.Store, *pmem.Arena, func() (pager.Store, error)) {
	lat := pmem.DefaultLatencies(300, 300)
	lat.CacheBytes = 16 << 10
	sys := pmem.NewSystem(lat)
	switch scheme {
	case "FAST", "FAST+":
		variant := fast.SlotHeaderLogging
		if scheme == "FAST+" {
			variant = fast.InPlaceCommit
		}
		cfg := fast.Config{PageSize: 1024, MaxPages: 2048, LogBytes: 256 << 10, Variant: variant}
		st := fast.Create(sys, cfg)
		arena := st.Arena()
		reattach := func() (pager.Store, error) {
			ns, err := fast.Attach(arena, cfg)
			if err != nil {
				return nil, err
			}
			return ns, ns.Recover()
		}
		return sys, st, arena, reattach
	default:
		kind := wal.NVWAL
		switch scheme {
		case "WAL":
			kind = wal.FullWAL
		case "Journal":
			kind = wal.Journal
		}
		cfg := wal.Config{PageSize: 1024, MaxPages: 2048, LogBytes: 1 << 20, CheckpointBytes: 128 << 10, Kind: kind}
		st := wal.Create(sys, cfg)
		arena := st.Arena()
		reattach := func() (pager.Store, error) {
			ns, err := wal.Attach(arena, cfg)
			if err != nil {
				return nil, err
			}
			return ns, ns.Recover()
		}
		return sys, st, arena, reattach
	}
}

// runGoldenWorkload drives the fixed workload on one scheme and returns its
// observable record.
func runGoldenWorkload(t *testing.T, scheme string) goldenRecord {
	t.Helper()
	sys, st, arena, reattach := goldenEnv(scheme)
	tree := btree.New(st)
	gen := workload.New(workload.Config{Seed: 11, RecordSize: 100})

	var keys [][]byte
	for i := 0; i < 400; i++ {
		k := gen.NextKey()
		keys = append(keys, k)
		if err := tree.Insert(k, gen.NextValue()); err != nil {
			t.Fatalf("%s insert %d: %v", scheme, i, err)
		}
	}
	for i := 0; i < 60; i++ {
		if err := tree.Update(keys[(i*3)%400], gen.ValueOfSize(120)); err != nil {
			t.Fatalf("%s update %d: %v", scheme, i, err)
		}
	}
	for i := 0; i < 40; i++ {
		if err := tree.Delete(keys[(i*7)%280]); err != nil {
			t.Fatalf("%s delete %d: %v", scheme, i, err)
		}
	}
	for _, k := range keys {
		if _, _, err := tree.Get(k); err != nil {
			t.Fatalf("%s get: %v", scheme, err)
		}
	}
	// One multi-insert transaction (FAST+ takes its logged fallback here).
	tx, err := tree.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := tx.Insert(gen.NextKey(), gen.NextValue()); err != nil {
			t.Fatalf("%s batch insert: %v", scheme, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("%s batch commit: %v", scheme, err)
	}

	// Crash mid-workload, run the eviction lottery, recover, keep going.
	sys.CrashAfter(1500)
	crashed := sys.RunToCrash(func() {
		for i := 0; i < 500; i++ {
			if err := tree.Insert(gen.NextKey(), gen.NextValue()); err != nil {
				panic(err)
			}
		}
	})
	if !crashed {
		t.Fatalf("%s: crash did not fire", scheme)
	}
	sys.Crash(pmem.CrashOptions{Seed: 7, EvictProb: 0.5})
	st2, err := reattach()
	if err != nil {
		t.Fatalf("%s recover: %v", scheme, err)
	}
	tree = btree.New(st2)
	for i := 0; i < 50; i++ {
		if err := tree.Insert(gen.NextKey(), gen.NextValue()); err != nil {
			t.Fatalf("%s post-crash insert: %v", scheme, err)
		}
	}

	// Fold the surviving contents into a checksum.
	h := fnv.New64a()
	count := 0
	if err := tree.Scan(nil, nil, func(k, v []byte) bool {
		h.Write(k)
		h.Write(v)
		count++
		return true
	}); err != nil {
		t.Fatalf("%s scan: %v", scheme, err)
	}

	return goldenRecord{
		SimNS:       sys.Clock().Now(),
		Fences:      sys.Fences(),
		CrashPoints: sys.CrashPoints(),
		Resident:    arena.ResidentLines(),
		Dirty:       arena.DirtyLines(),
		Count:       count,
		TreeSum:     h.Sum64(),
		PM:          arena.Stats(),
		Phases:      sys.Clock().Phases(),
	}
}

// TestGoldenDeterminism runs the fixed workload on all five schemes and
// compares every observable against testdata/golden.json.
func TestGoldenDeterminism(t *testing.T) {
	got := make(map[string]goldenRecord, len(goldenSchemes))
	for _, scheme := range goldenSchemes {
		got[scheme] = runGoldenWorkload(t, scheme)
	}

	path := filepath.Join("testdata", "golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	var want map[string]goldenRecord
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	for _, scheme := range goldenSchemes {
		g, w := got[scheme], want[scheme]
		if !reflect.DeepEqual(g, w) {
			gj, _ := json.Marshal(g)
			wj, _ := json.Marshal(w)
			t.Errorf("%s: simulated behavior diverged from golden\n got: %s\nwant: %s", scheme, gj, wj)
		}
	}
}

// TestGoldenDeterminismStable re-runs one scheme twice in-process and
// requires identical records, guarding against map-iteration or other
// run-to-run nondeterminism sneaking into the emulation.
func TestGoldenDeterminismStable(t *testing.T) {
	a := runGoldenWorkload(t, "FAST+")
	b := runGoldenWorkload(t, "FAST+")
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// goldenShardRecord pins one shard of the sharded golden workload: its
// full observable state (simulated time, op/batch counters, PM events,
// phase breakdown) plus a content checksum, so shard routing and batch
// boundaries are bit-stable across refactors.
type goldenShardRecord struct {
	Info    fasp.ShardInfo `json:"info"`
	Count   int            `json:"count"`
	TreeSum uint64         `json:"tree_sum"`
}

// runGoldenShardedWorkload drives a fixed workload through the facade's
// deterministic ApplyBatch path on a Shards=4 store — batch boundaries are
// a pure function of the op sequence (chunks of MaxBatch per shard, in
// ascending shard order), so per-shard simulated time is reproducible,
// unlike the timing-dependent mailbox path.
func runGoldenShardedWorkload(t *testing.T) []goldenShardRecord {
	t.Helper()
	const shards = 4
	kv, err := fasp.OpenKV(fasp.Options{
		Scheme: "fast+", Shards: shards, MaxBatch: 16,
		PageSize: 1024, MaxPages: 2048, CacheBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	gen := workload.New(workload.Config{Seed: 11, RecordSize: 100})

	apply := func(ops []fasp.Op) {
		t.Helper()
		for i, err := range kv.ApplyBatch(ops) {
			if err != nil {
				t.Fatalf("sharded golden op %d (%s): %v", i, ops[i].Kind, err)
			}
		}
	}
	var keys [][]byte
	ops := make([]fasp.Op, 0, 600)
	for i := 0; i < 600; i++ {
		k := gen.NextKey()
		keys = append(keys, k)
		ops = append(ops, fasp.Op{Kind: fasp.OpInsert, Key: k, Val: gen.NextValue()})
	}
	apply(ops)
	ops = ops[:0]
	for i := 0; i < 80; i++ {
		ops = append(ops, fasp.Op{Kind: fasp.OpPut, Key: keys[(i*3)%600], Val: gen.ValueOfSize(120)})
	}
	apply(ops)
	ops = ops[:0]
	for i := 0; i < 50; i++ {
		ops = append(ops, fasp.Op{Kind: fasp.OpDelete, Key: keys[(i*7)%400]})
	}
	apply(ops)

	// Whole-engine power failure on group-commit boundaries: each shard
	// runs the eviction lottery with a per-shard decorrelated seed.
	kv.Crash(pmem.CrashOptions{Seed: 7, EvictProb: 0.5})
	if err := kv.ReopenKV(); err != nil {
		t.Fatal(err)
	}
	ops = ops[:0]
	for i := 0; i < 100; i++ {
		ops = append(ops, fasp.Op{Kind: fasp.OpInsert, Key: gen.NextKey(), Val: gen.NextValue()})
	}
	apply(ops)

	recs := make([]goldenShardRecord, shards)
	for i := 0; i < shards; i++ {
		in, err := kv.ShardStats(i)
		if err != nil {
			t.Fatal(err)
		}
		rec := goldenShardRecord{Info: in}
		h := fnv.New64a()
		if err := kv.ShardScan(i, nil, nil, func(k, v []byte) bool {
			h.Write(k)
			h.Write(v)
			rec.Count++
			return true
		}); err != nil {
			t.Fatalf("shard %d scan: %v", i, err)
		}
		rec.TreeSum = h.Sum64()
		recs[i] = rec
	}
	return recs
}

// TestGoldenShardedDeterminism compares the Shards=4 workload's per-shard
// records against testdata/golden_shards.json. Regenerate only on an
// intentional simulated-behavior change:
//
//	go test -run TestGoldenShardedDeterminism -update-golden .
func TestGoldenShardedDeterminism(t *testing.T) {
	got := runGoldenShardedWorkload(t)

	path := filepath.Join("testdata", "golden_shards.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("sharded golden rewritten: %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read sharded golden (run with -update-golden to create): %v", err)
	}
	var want []goldenShardRecord
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d shards, run produced %d", len(want), len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			gj, _ := json.Marshal(got[i])
			wj, _ := json.Marshal(want[i])
			t.Errorf("shard %d: simulated behavior diverged from golden\n got: %s\nwant: %s", i, gj, wj)
		}
	}
}

// TestGoldenShardedStable re-runs the sharded workload twice in-process
// and requires identical per-shard records.
func TestGoldenShardedStable(t *testing.T) {
	a := runGoldenShardedWorkload(t)
	b := runGoldenShardedWorkload(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical sharded runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}

var _ = fmt.Sprintf // keep fmt imported if error paths are trimmed
