package fasp

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestZeroLatencySentinel: PMReadNS/PMWriteNS of -1 select an explicitly
// zero-latency medium; 0 still picks the 300 ns default, and the sentinel
// survives the facade's (idempotent) option fill.
func TestZeroLatencySentinel(t *testing.T) {
	kv, err := OpenKV(Options{PMReadNS: -1, PMWriteNS: -1})
	if err != nil {
		t.Fatal(err)
	}
	lat := kv.System().Latencies()
	if lat.PMRead != 0 || lat.PMWrite != 0 {
		t.Fatalf("sentinel not honoured: PMRead=%d PMWrite=%d", lat.PMRead, lat.PMWrite)
	}
	kvDefault, err := OpenKV(Options{})
	if err != nil {
		t.Fatal(err)
	}
	lat = kvDefault.System().Latencies()
	if lat.PMRead != 300 || lat.PMWrite != 300 {
		t.Fatalf("default broken: PMRead=%d PMWrite=%d", lat.PMRead, lat.PMWrite)
	}
	// Sharded stores fill Options once per shard backend; the sentinel must
	// survive every re-fill.
	skv, err := OpenKV(Options{Shards: 3, PMReadNS: -1, PMWriteNS: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer skv.Close()
	for i := 0; i < skv.Shards(); i++ {
		sys, err := skv.ShardSystem(i)
		if err != nil {
			t.Fatal(err)
		}
		lat := sys.Latencies()
		if lat.PMRead != 0 || lat.PMWrite != 0 {
			t.Fatalf("shard %d: sentinel lost: %+v", i, lat)
		}
	}
}

func TestShardedKVBasics(t *testing.T) {
	kv, err := OpenKV(Options{Shards: 4, MaxBatch: 16, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if !kv.Sharded() || kv.Shards() != 4 {
		t.Fatalf("Sharded=%v Shards=%d", kv.Sharded(), kv.Shards())
	}
	const n = 400
	for i := 0; i < n; i++ {
		if err := kv.Insert(k(i), v(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	got, ok, err := kv.Get(k(123))
	if err != nil || !ok || !bytes.Equal(got, v(123)) {
		t.Fatalf("get = %q %v %v", got, ok, err)
	}
	if err := kv.Put(k(123), []byte("patched")); err != nil {
		t.Fatal(err)
	}
	if got, _, _ = kv.Get(k(123)); string(got) != "patched" {
		t.Fatalf("after put: %q", got)
	}
	if err := kv.Delete(k(123)); err != nil {
		t.Fatal(err)
	}
	if c, err := kv.Count(); err != nil || c != n-1 {
		t.Fatalf("count = %d, %v", c, err)
	}
	if err := kv.Validate(); err != nil {
		t.Fatal(err)
	}
	// Global scan order is the single-store order despite partitioning.
	var prev []byte
	seen := 0
	if err := kv.Scan(nil, nil, func(key, _ []byte) bool {
		if prev != nil && bytes.Compare(prev, key) >= 0 {
			t.Fatalf("scan out of order: %q after %q", key, prev)
		}
		prev = append(prev[:0], key...)
		seen++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if seen != n-1 {
		t.Fatalf("scan saw %d keys", seen)
	}
	// Cross-shard explicit transactions are refused, not silently unsafe.
	if err := kv.Batch(func(tx BatchTx) error { return nil }); err == nil {
		t.Fatal("Batch accepted on a sharded store")
	}
	// Stats aggregate across shards.
	st := kv.EngineStats()
	if st.Shards != 4 || st.Ops == 0 || st.Batches == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.SimMaxNS <= 0 || st.SimSumNS < st.SimMaxNS {
		t.Fatalf("sim times inconsistent: %+v", st)
	}
	if kv.SimulatedNS() != st.SimMaxNS {
		t.Fatalf("SimulatedNS %d != SimMaxNS %d", kv.SimulatedNS(), st.SimMaxNS)
	}
	if ph := kv.Phases(); len(ph) == 0 {
		t.Fatal("no phase breakdown")
	}
	var ops int64
	for i := 0; i < kv.Shards(); i++ {
		in, err := kv.ShardStats(i)
		if err != nil {
			t.Fatal(err)
		}
		if in.SimNS == 0 {
			t.Fatalf("shard %d idle — routing broken", i)
		}
		ops += in.Ops
	}
	if ops != st.Ops {
		t.Fatalf("per-shard ops %d != aggregate %d", ops, st.Ops)
	}
}

func TestShardedKVApplyBatch(t *testing.T) {
	kv, err := OpenKV(Options{Shards: 4, MaxBatch: 8, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	ops := make([]Op, 100)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Key: k(i), Val: v(i)}
	}
	for i, err := range kv.ApplyBatch(ops) {
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Mixed batch: benign failures don't poison their group commit.
	mixed := []Op{
		{Kind: OpInsert, Key: k(0), Val: v(0)}, // duplicate
		{Kind: OpPut, Key: k(1), Val: []byte("patched")},
		{Kind: OpDelete, Key: []byte("absent")},
		{Kind: OpInsert, Key: k(100), Val: v(100)},
	}
	errs := kv.ApplyBatch(mixed)
	if errs[0] == nil || errs[1] != nil || errs[2] == nil || errs[3] != nil {
		t.Fatalf("mixed verdicts: %v", errs)
	}
	if got, _, _ := kv.Get(k(1)); string(got) != "patched" {
		t.Fatalf("put in mixed batch lost: %q", got)
	}
	if c, _ := kv.Count(); c != 101 {
		t.Fatalf("count = %d", c)
	}
}

func TestShardedKVConcurrentClients(t *testing.T) {
	kv, err := OpenKV(Options{Shards: 4, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := []byte(fmt.Sprintf("w%02d-%04d", w, i))
				if err := kv.Insert(key, []byte("v")); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if _, ok, err := kv.Get(key); err != nil || !ok {
					t.Errorf("get: %v %v", ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if c, err := kv.Count(); err != nil || c != workers*perWorker {
		t.Fatalf("count = %d (%v)", c, err)
	}
	if err := kv.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedKVCrashReopen(t *testing.T) {
	kv, err := OpenKV(Options{Shards: 4, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	const n = 200
	for i := 0; i < n; i++ {
		if err := kv.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	kv.Crash(CrashOptions{Seed: 11, EvictProb: 0.5})
	if _, _, err := kv.Get(k(0)); !errors.Is(err, ErrShardCrashed) {
		t.Fatalf("get after crash: %v", err)
	}
	if err := kv.Put(k(0), v(0)); !errors.Is(err, ErrShardCrashed) {
		t.Fatalf("put after crash: %v", err)
	}
	if err := kv.ReopenKV(); err != nil {
		t.Fatal(err)
	}
	if err := kv.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, ok, err := kv.Get(k(i)); err != nil || !ok {
			t.Fatalf("key %d lost: %v %v", i, ok, err)
		}
	}
	if err := kv.Insert(k(n), v(n)); err != nil {
		t.Fatalf("store dead after reopen: %v", err)
	}
}

func k(i int) []byte { return []byte(fmt.Sprintf("key%06d", i)) }
func v(i int) []byte { return []byte(fmt.Sprintf("val%06d", i)) }
