// Benchmarks regenerating the paper's evaluation. Each BenchmarkFigNN runs
// the corresponding figure driver (internal/experiment) and reports its
// headline metric via b.ReportMetric, in addition to Go's wall-clock ns/op
// for the simulation itself. `go test -bench . -benchmem` prints every
// figure's key numbers; `cmd/faspbench` prints the full tables.
//
// Scale note: benchmarks default to 2,000 transactions per data point
// (the paper uses 100,000) so a full -bench=. run stays in seconds; the
// shapes are stable from ~1,000 transactions up.
package fasp_test

import (
	"testing"

	"fasp"
	"fasp/internal/btree"
	"fasp/internal/experiment"
	"fasp/internal/fast"
	"fasp/internal/pmem"
	"fasp/internal/workload"
)

const benchN = 2000

func benchParams() experiment.Params {
	return experiment.Params{N: benchN, PageSize: 4096, Seed: 42}
}

// BenchmarkInsert measures the end-to-end single-insert transaction on each
// scheme at the paper's default PM 300/300 point, reporting simulated
// microseconds per transaction alongside Go ns/op.
func BenchmarkInsert(b *testing.B) {
	for _, s := range experiment.AllSchemes {
		b.Run(s.String(), func(b *testing.B) {
			// Size the page space for the iteration count Go chose.
			p := benchParams()
			p.N = b.N + benchN
			p.MaxPages = 0 // derive from N
			e := experiment.NewEnv(s, pmem.DefaultLatencies(300, 300), p)
			gen := workload.New(workload.Config{Seed: 42, RecordSize: 64})
			start := e.Sys.Clock().Now()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.Tree.Insert(gen.NextKey(), gen.NextValue()); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			sim := e.Sys.Clock().Now() - start
			b.ReportMetric(float64(sim)/float64(b.N)/1000, "sim-us/txn")
		})
	}
}

// BenchmarkGet measures point lookups on a pre-populated FAST+ tree.
func BenchmarkGet(b *testing.B) {
	e := experiment.NewEnv(experiment.FASTPlus, pmem.DefaultLatencies(300, 300), benchParams())
	gen := workload.New(workload.Config{Seed: 42, RecordSize: 64})
	var keys [][]byte
	for i := 0; i < benchN; i++ {
		k := gen.NextKey()
		keys = append(keys, k)
		if err := e.Tree.Insert(k, gen.NextValue()); err != nil {
			b.Fatal(err)
		}
	}
	start := e.Sys.Clock().Now()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok, err := e.Tree.Get(keys[i%len(keys)]); err != nil || !ok {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	sim := e.Sys.Clock().Now() - start
	b.ReportMetric(float64(sim)/float64(b.N)/1000, "sim-us/get")
}

// BenchmarkSQLInsert measures the full SQL path (Figures 11–12's subject).
func BenchmarkSQLInsert(b *testing.B) {
	for _, scheme := range []string{fasp.SchemeNVWAL, fasp.SchemeFAST, fasp.SchemeFASTPlus} {
		b.Run(scheme, func(b *testing.B) {
			db, err := fasp.Open(fasp.Options{Scheme: scheme})
			if err != nil {
				b.Fatal(err)
			}
			db.MustExec(`CREATE TABLE t (id INTEGER PRIMARY KEY, payload BLOB)`)
			gen := workload.New(workload.Config{Seed: 42, RecordSize: 64})
			start := db.SimulatedNS()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				stmt := workload.SQLInsert("t", uint64(i+1), gen.NextValue())
				if _, err := db.Exec(stmt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(db.SimulatedNS()-start)/float64(b.N)/1000, "sim-us/stmt")
		})
	}
}

// BenchmarkFig06 regenerates Figure 6 and reports the FAST+ vs NVWAL
// total-time speedup at the 300/300 point.
func BenchmarkFig06(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFig6(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		var nv, fp int64
		for _, r := range rows {
			if r.Latency == 300 && r.Scheme == experiment.NVWAL {
				nv = r.TotalNS
			}
			if r.Latency == 300 && r.Scheme == experiment.FASTPlus {
				fp = r.TotalNS
			}
		}
		b.ReportMetric(float64(nv)/float64(fp), "speedup@300")
	}
}

// BenchmarkFig07 regenerates Figure 7 and reports FAST+'s clflush(record)
// share of Page Update at 300/300.
func BenchmarkFig07(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFig7(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Latency == 300 && r.Scheme == experiment.FASTPlus && r.UpdateNS > 0 {
				b.ReportMetric(100*float64(r.FlushRecordNS)/float64(r.UpdateNS), "clflush-pct")
			}
		}
	}
}

// BenchmarkFig08 regenerates Figure 8 and reports the paper's headline:
// NVWAL commit overhead / FAST+ commit overhead (paper: ~6x).
func BenchmarkFig08(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFig8(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		var nv, fp int64
		for _, r := range rows {
			if r.WriteLatency == 900 && r.Scheme == experiment.NVWAL {
				nv = r.CommitNS
			}
			if r.WriteLatency == 900 && r.Scheme == experiment.FASTPlus {
				fp = r.CommitNS
			}
		}
		b.ReportMetric(float64(nv)/float64(fp), "commit-ratio@900w")
	}
}

// BenchmarkFig09 regenerates Figure 9 and reports clflush/insert for FAST+
// at 64-byte records.
func BenchmarkFig09(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFig9(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.RecordSize == 64 && r.Scheme == experiment.FASTPlus {
				b.ReportMetric(r.Flushes, "clflush/insert")
			}
		}
	}
}

// BenchmarkFig10 regenerates Figure 10 and reports the per-record cost of
// 8-insert transactions under FAST+ (the slot-header-logging fallback).
func BenchmarkFig10(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFig10(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Batch == 8 && r.Scheme == experiment.FASTPlus {
				b.ReportMetric(float64(r.PerOpNS)/1000, "sim-us/record@8")
			}
		}
	}
}

// BenchmarkFig11 regenerates Figure 11 and reports FAST+'s end-to-end
// response-time improvement over NVWAL at 300/300 (paper: up to 33%).
func BenchmarkFig11(b *testing.B) {
	p := benchParams()
	p.N = 1000
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFig11(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Latency == 300 && r.Scheme == experiment.FASTPlus {
				b.ReportMetric(r.ImprovementPct, "improvement-pct@300")
			}
		}
	}
}

// BenchmarkFig12 regenerates Figure 12 and reports FAST+'s mixed-workload
// throughput at 300/300.
func BenchmarkFig12(b *testing.B) {
	p := benchParams()
	p.N = 1000
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunFig12(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Latency == 300 && r.Scheme == experiment.FASTPlus && r.Mix == "mixed-crud" {
				b.ReportMetric(r.ThroughputKTPS, "sim-kTPS")
			}
		}
	}
}

// BenchmarkAblationSchemes compares all five recovery schemes.
func BenchmarkAblationSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunAblationSchemes(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == experiment.Journal {
				b.ReportMetric(float64(r.BytesLog), "journalB/insert")
			}
		}
	}
}

// BenchmarkAblationPageSize sweeps the page size.
func BenchmarkAblationPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunAblationPageSize(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.PageSize == 16384 && r.Scheme == experiment.FASTPlus {
				b.ReportMetric(float64(r.TotalNS)/1000, "sim-us@16K")
			}
		}
	}
}

// BenchmarkAblationHTMAborts quantifies the retry cost of best-effort HTM.
func BenchmarkAblationHTMAborts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunAblationHTMAborts(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		base, worst := rows[0].TotalNS, rows[len(rows)-1].TotalNS
		b.ReportMetric(100*(float64(worst)/float64(base)-1), "slowdown-pct@p0.5")
	}
}

// BenchmarkHashVsBTree compares point operations on the two index
// structures built on the same failure-atomic slotted pages (the paper's
// §2.2 claim that the optimisation generalises to hash-based indexes).
func BenchmarkHashVsBTree(b *testing.B) {
	b.Run("btree-put", func(b *testing.B) {
		kv, err := fasp.OpenKV(fasp.Options{MaxPages: b.N/4 + 8192})
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.New(workload.Config{Seed: 42, RecordSize: 64})
		start := kv.SimulatedNS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := kv.Insert(gen.NextKey(), gen.NextValue()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(kv.SimulatedNS()-start)/float64(b.N)/1000, "sim-us/op")
	})
	b.Run("hash-put", func(b *testing.B) {
		h, err := fasp.OpenHash(fasp.Options{MaxPages: b.N/4 + 8192}, 1024)
		if err != nil {
			b.Fatal(err)
		}
		gen := workload.New(workload.Config{Seed: 42, RecordSize: 64})
		start := h.SimulatedNS()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := h.Put(gen.NextKey(), gen.NextValue()); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(h.SimulatedNS()-start)/float64(b.N)/1000, "sim-us/op")
	})
}

// BenchmarkRecovery measures crash recovery itself: the time to recover a
// store whose crash interrupted a committing transaction. The crashed PM
// image is prepared once; every iteration restores it and runs recovery,
// as a real restart would.
func BenchmarkRecovery(b *testing.B) {
	cfg := fast.Config{PageSize: 4096, MaxPages: 1024, Variant: fast.InPlaceCommit}
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := fast.Create(sys, cfg)
	tree := btree.New(st)
	gen := workload.New(workload.Config{Seed: 42, RecordSize: 64})
	for j := 0; j < 200; j++ {
		if err := tree.Insert(gen.NextKey(), gen.NextValue()); err != nil {
			b.Fatal(err)
		}
	}
	// Crash in the middle of the next transaction's commit.
	sys.CrashAfter(150)
	sys.RunToCrash(func() {
		for {
			if err := tree.Insert(gen.NextKey(), gen.NextValue()); err != nil {
				b.Fatal(err)
			}
		}
	})
	sys.Crash(pmem.CrashOptions{Seed: 42, EvictProb: 0.5})
	img := st.Arena().MediumSnapshot()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := st.Arena().RestoreMedium(img); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		ns, err := fast.Attach(st.Arena(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		if err := ns.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecoverySweep runs the recovery-time experiment and reports the
// ratio between NVWAL's WAL replay and FAST+'s constant-time recovery at
// the largest uncheckpointed-work point.
func BenchmarkRecoverySweep(b *testing.B) {
	p := benchParams()
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunRecovery(p)
		if err != nil {
			b.Fatal(err)
		}
		var nv, fp int64
		last := experiment.RecoveryPoints[len(experiment.RecoveryPoints)-1]
		for _, r := range rows {
			if r.Txns == last && r.Scheme == experiment.NVWAL {
				nv = r.NS
			}
			if r.Txns == last && r.Scheme == experiment.FASTPlus {
				fp = r.NS + 1
			}
		}
		b.ReportMetric(float64(nv)/float64(fp), "replay-ratio")
	}
}

// BenchmarkWriteAmplification reports FAST+'s PM write amplification
// (physical PM bytes per logical byte inserted).
func BenchmarkWriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiment.RunWriteAmplification(benchParams())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Scheme == experiment.FASTPlus {
				b.ReportMetric(r.Amplification, "amplification")
			}
		}
	}
}
