// Quickstart: open a FAST+ database on emulated persistent memory, create
// a table, insert rows, and query them — the smallest end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"fasp"
)

func main() {
	db, err := fasp.Open(fasp.Options{
		Scheme:    fasp.SchemeFASTPlus, // the paper's headline scheme
		PMReadNS:  300,                 // emulated PM latency (ns / cache line)
		PMWriteNS: 300,
	})
	if err != nil {
		log.Fatal(err)
	}

	db.MustExec(`
		CREATE TABLE contacts (id INTEGER PRIMARY KEY, name TEXT NOT NULL, phone TEXT);
		INSERT INTO contacts (name, phone) VALUES ('Ada Lovelace', '+44-1815');
		INSERT INTO contacts (name, phone) VALUES ('Edsger Dijkstra', '+31-1930');
		INSERT INTO contacts (name, phone) VALUES ('Barbara Liskov', '+1-1939');
	`)

	rows, err := db.Query(`SELECT id, name FROM contacts WHERE name LIKE '%a%' ORDER BY name`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("contacts matching '%a%':")
	for _, r := range rows {
		fmt.Printf("  #%d %s\n", r[0].AsInt(), r[1].AsText())
	}

	// Every statement ran as a failure-atomic transaction on PM; the
	// simulated clock shows what that cost.
	fmt.Printf("\nscheme: %s, simulated time: %.2f us\n",
		db.SchemeName(), float64(db.SimulatedNS())/1000)
}
