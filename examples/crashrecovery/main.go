// CrashRecovery: demonstrate the failure-atomicity story end to end. A
// power failure is injected in the middle of a committing transaction —
// at a random word-store or cache-line-flush — with an adversarial cache
// eviction lottery, and recovery (§4.4) restores a consistent database:
// committed transactions durable, the torn one absent (or complete, if its
// commit mark made it out).
package main

import (
	"fmt"
	"log"

	"fasp/internal/btree"
	"fasp/internal/fast"
	"fasp/internal/pmem"
)

func main() {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	cfg := fast.Config{PageSize: 512, MaxPages: 4096, Variant: fast.InPlaceCommit}
	st := fast.Create(sys, cfg)
	tree := btree.New(st)

	committed := 0
	insert := func(i int) error {
		return tree.Insert(
			[]byte(fmt.Sprintf("key-%03d", i)),
			[]byte(fmt.Sprintf("value for record %03d", i)))
	}

	// Phase 1: commit 20 transactions safely.
	for i := 0; i < 20; i++ {
		if err := insert(i); err != nil {
			log.Fatal(err)
		}
		committed++
	}
	fmt.Printf("committed %d transactions\n", committed)

	// Phase 2: arm the crash injector — the power fails 137 architectural
	// events (stores/flushes) into the next batch, mid-protocol.
	sys.CrashAfter(137)
	crashed := sys.RunToCrash(func() {
		for i := 20; i < 40; i++ {
			if err := insert(i); err != nil {
				panic(err)
			}
			committed++
		}
	})
	fmt.Printf("power failed mid-run: %v (after %d committed txns)\n", crashed, committed)

	// Phase 3: the crash. Each unflushed dirty cache line survives with
	// probability 0.5 — the adversarial "hardware may have evicted it"
	// semantics of §3.2.
	sys.Crash(pmem.CrashOptions{Seed: 7, EvictProb: 0.5})

	// Phase 4: recovery. If the slot-header log holds a commit mark, the
	// checkpoint is replayed; otherwise the torn transaction vanishes.
	st2, err := fast.Attach(st.Arena(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := st2.Recover(); err != nil {
		log.Fatal(err)
	}
	tree2 := btree.New(st2)
	tx, err := tree2.Begin()
	if err != nil {
		log.Fatal(err)
	}
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		log.Fatalf("recovered tree is invalid: %v", err)
	}
	count, _ := tx.Count()
	fmt.Printf("after recovery: %d records (committed %d, in-flight may round up)\n", count, committed)
	for i := 0; i < committed; i++ {
		if _, ok, _ := tx.Get([]byte(fmt.Sprintf("key-%03d", i))); !ok {
			log.Fatalf("committed key %d lost!", i)
		}
	}
	fmt.Println("every committed record verified; structure valid — recovery OK")
	fmt.Printf("(store stats: %+v)\n", st2.Stats())
}
