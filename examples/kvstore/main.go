// KVStore: use the failure-atomic slotted-paging B-tree directly as an
// embedded ordered key/value store — the pager/B-tree layer the paper's
// Figures 6–10 measure, without the SQL front end. Demonstrates point
// operations, atomic multi-key batches, range scans, and the slotted-page
// machinery handling variable-length values (updates are out-of-place;
// fragmentation is repaired by copy-on-write defragmentation).
package main

import (
	"fmt"
	"log"
	"strings"

	"fasp"
)

func main() {
	kv, err := fasp.OpenKV(fasp.Options{Scheme: fasp.SchemeFASTPlus, PageSize: 1024})
	if err != nil {
		log.Fatal(err)
	}

	// Point writes: each Put is one failure-atomic transaction.
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("user:%04d", i)
		val := fmt.Sprintf(`{"name":"user-%d","visits":%d}`, i, i*3)
		if err := kv.Insert([]byte(key), []byte(val)); err != nil {
			log.Fatal(err)
		}
	}

	// Variable-length update: grows the record; the old version is never
	// overwritten (recovery safety), the offset swap commits it.
	big := fmt.Sprintf(`{"name":"user-42","visits":126,"bio":%q}`, strings.Repeat("Go! ", 50))
	if err := kv.Put([]byte("user:0042"), []byte(big)); err != nil {
		log.Fatal(err)
	}

	// Atomic batch: all or nothing, committed through the slot-header log.
	err = kv.Batch(func(tx fasp.BatchTx) error {
		for i := 0; i < 10; i++ {
			if err := tx.Insert([]byte(fmt.Sprintf("session:%02d", i)), []byte("active")); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// Ordered range scan.
	fmt.Println("users 0010..0014:")
	if err := kv.Scan([]byte("user:0010"), []byte("user:0014"), func(k, v []byte) bool {
		fmt.Printf("  %s = %.40s…\n", k, v)
		return true
	}); err != nil {
		log.Fatal(err)
	}

	n, _ := kv.Count()
	if err := kv.Validate(); err != nil {
		log.Fatalf("tree invalid: %v", err)
	}
	fmt.Printf("\n%d records, tree valid, %.2f simulated ms on %s\n",
		n, float64(kv.SimulatedNS())/1e6, kv.SchemeName())
}
