// Mobile: the paper's motivating workload. Android applications mostly run
// single-INSERT transactions against SQLite ("as if it is a flat file
// interface", §3.2) — the case where FAST+'s in-place commit is optimal:
// no journal, no WAL frame, just the record bytes plus one failure-atomic
// slot-header write.
//
// This example runs the same message-log insert stream on FAST+ and on
// NVWAL and prints the per-transaction commit breakdown side by side.
package main

import (
	"fmt"
	"log"

	"fasp"
	"fasp/internal/phase"
)

const nMessages = 2000

func run(scheme string) (*fasp.DB, int64) {
	db, err := fasp.Open(fasp.Options{Scheme: scheme, PMReadNS: 300, PMWriteNS: 300})
	if err != nil {
		log.Fatal(err)
	}
	db.MustExec(`CREATE TABLE messages (id INTEGER PRIMARY KEY, sender TEXT, body TEXT)`)
	start := db.SimulatedNS()
	for i := 1; i <= nMessages; i++ {
		db.MustExec(fmt.Sprintf(
			`INSERT INTO messages VALUES (%d, 'user%d', 'message body number %d — the quick brown fox')`,
			i, i%17, i))
	}
	return db, db.SimulatedNS() - start
}

func main() {
	fmt.Printf("mobile workload: %d single-insert transactions\n\n", nMessages)
	var base int64
	for _, scheme := range []string{fasp.SchemeNVWAL, fasp.SchemeFAST, fasp.SchemeFASTPlus} {
		db, elapsed := run(scheme)
		per := elapsed / nMessages
		phases := db.System().Clock().Phases()
		fmt.Printf("%-8s %6.2f us/txn   commit=%.2f  (log-flush=%.2f checkpoint=%.2f atomic-write=%.2f heap=%.2f)\n",
			db.SchemeName(), float64(per)/1000,
			float64(phases[phase.Commit])/float64(nMessages)/1000,
			float64(phases[phase.LogFlush])/float64(nMessages)/1000,
			float64(phases[phase.Checkpoint])/float64(nMessages)/1000,
			float64(phases[phase.AtomicWrite])/float64(nMessages)/1000,
			float64(phases[phase.Heap])/float64(nMessages)/1000)
		if scheme == fasp.SchemeNVWAL {
			base = per
		} else {
			fmt.Printf("         -> %.1f%% faster than NVWAL\n", 100*(1-float64(per)/float64(base)))
		}
	}
	fmt.Println("\n(the paper reports FAST+ cutting commit overhead to ~1/6 of NVWAL's,")
	fmt.Println(" and end-to-end response time by up to 33%)")
}
