// HashStore: the paper's §2.2 claim in action — the failure-atomic
// slotted-page machinery also powers hash-based indexes. A session cache
// backed by a persistent hash index: O(1) lookups, overflow chains of
// slotted pages, and the same crash guarantees as the B-tree, including
// FAST+'s single-cache-line in-place commits for small Puts.
package main

import (
	"fmt"
	"log"

	"fasp"
)

func main() {
	h, err := fasp.OpenHash(fasp.Options{Scheme: fasp.SchemeFASTPlus, PageSize: 1024}, 64)
	if err != nil {
		log.Fatal(err)
	}

	// Session tokens → user payloads.
	for i := 0; i < 400; i++ {
		token := fmt.Sprintf("sess-%08x", i*2654435761)
		payload := fmt.Sprintf(`{"uid":%d,"roles":["user"],"ttl":3600}`, i)
		if err := h.Put([]byte(token), []byte(payload)); err != nil {
			log.Fatal(err)
		}
	}

	probe := fmt.Sprintf("sess-%08x", 7*2654435761)
	v, ok, err := h.Get([]byte(probe))
	if err != nil || !ok {
		log.Fatalf("lookup failed: %v %v", ok, err)
	}
	fmt.Printf("lookup %s -> %s\n", probe, v)

	// Simulate a power failure mid-life and recover.
	h.Crash(fasp.CrashOptions{Seed: 3, EvictProb: 0.5})
	if err := h.ReopenHash(); err != nil {
		log.Fatal(err)
	}
	if err := h.Validate(); err != nil {
		log.Fatalf("index invalid after recovery: %v", err)
	}
	n, _ := h.Len()
	fmt.Printf("after crash+recovery: %d sessions, index valid\n", n)

	// Grow the table online (one big transaction).
	if err := h.Rehash(256); err != nil {
		log.Fatal(err)
	}
	v, ok, _ = h.Get([]byte(probe))
	fmt.Printf("after rehash to 256 buckets: lookup ok=%v, %.2f simulated ms total\n",
		ok, float64(h.SimulatedNS())/1e6)
	_ = v
}
