package fasp

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSnapshotRoundTripAllSchemes: insert → save → load on every commit
// scheme; all committed data — including a just-committed batch whose
// pages are still in the volatile cache — survives the round trip, because
// Save captures the durable medium and loading runs crash recovery.
func TestSnapshotRoundTripAllSchemes(t *testing.T) {
	for _, scheme := range []string{SchemeFASTPlus, SchemeFAST, SchemeNVWAL, SchemeWAL, SchemeJournal} {
		t.Run(scheme, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "kv.fasp")
			// A small cache keeps plenty of committed-but-unflushed pages
			// at save time, so the recovery path is genuinely exercised.
			kv, err := OpenKV(Options{Scheme: scheme, PageSize: 1024, CacheBytes: 16 << 10})
			if err != nil {
				t.Fatal(err)
			}
			const n = 200
			for i := 0; i < n; i++ {
				if err := kv.Insert(k(i), v(i)); err != nil {
					t.Fatal(err)
				}
			}
			// One committed multi-op transaction right before the save.
			if err := kv.Batch(func(tx BatchTx) error {
				for i := n; i < n+8; i++ {
					if err := tx.Insert(k(i), v(i)); err != nil {
						return err
					}
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if err := kv.Save(path); err != nil {
				t.Fatal(err)
			}
			kv2, err := OpenSnapshotKV(path, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := kv2.Validate(); err != nil {
				t.Fatal(err)
			}
			if kv2.SchemeName() == "" {
				t.Fatal("no scheme name after load")
			}
			if c, err := kv2.Count(); err != nil || c != n+8 {
				t.Fatalf("count = %d, %v; want %d", c, err, n+8)
			}
			for i := 0; i < n+8; i++ {
				got, ok, err := kv2.Get(k(i))
				if err != nil || !ok || !bytes.Equal(got, v(i)) {
					t.Fatalf("key %d: %q %v %v", i, got, ok, err)
				}
			}
		})
	}
}

// TestSnapshotSaveAtomic: Save never leaves temp droppings, overwrites an
// existing snapshot only after the new one is durable, and a failing save
// cannot destroy anything.
func TestSnapshotSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "kv.fasp")
	kv, err := OpenKV(Options{PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := kv.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Save(path); err != nil {
		t.Fatal(err)
	}
	// Overwrite with more data; the file is replaced atomically.
	for i := 50; i < 80; i++ {
		if err := kv.Insert(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Save(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Fatalf("dir has %d entries, want 1", len(entries))
	}
	kv2, err := OpenSnapshotKV(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := kv2.Count(); c != 80 {
		t.Fatalf("count = %d", c)
	}
	// A save into a nonexistent directory fails before touching anything.
	if err := kv.Save(filepath.Join(dir, "no-such-dir", "kv.fasp")); err == nil {
		t.Fatal("save into missing directory succeeded")
	}
	if kv3, err := OpenSnapshotKV(path, Options{}); err != nil {
		t.Fatalf("original snapshot damaged by failed save: %v", err)
	} else if c, _ := kv3.Count(); c != 80 {
		t.Fatalf("original snapshot content damaged: count = %d", c)
	}
}

// TestSnapshotShardedRoundTrip: a sharded store saves a version-2 snapshot
// holding every shard's image; loading restores the partitioning, runs
// per-shard recovery, and yields the same contents.
func TestSnapshotShardedRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "skv.fasp")
	kv, err := OpenKV(Options{Shards: 4, MaxBatch: 16, PageSize: 1024, CacheBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	const n = 300
	ops := make([]Op, n)
	for i := range ops {
		ops[i] = Op{Kind: OpInsert, Key: k(i), Val: v(i)}
	}
	for _, err := range kv.ApplyBatch(ops) {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Save(path); err != nil {
		t.Fatal(err)
	}
	kv2, err := OpenSnapshotKV(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv2.Close()
	if !kv2.Sharded() || kv2.Shards() != 4 {
		t.Fatalf("Sharded=%v Shards=%d after load", kv2.Sharded(), kv2.Shards())
	}
	if err := kv2.Validate(); err != nil {
		t.Fatal(err)
	}
	if c, err := kv2.Count(); err != nil || c != n {
		t.Fatalf("count = %d, %v", c, err)
	}
	for i := 0; i < n; i++ {
		got, ok, err := kv2.Get(k(i))
		if err != nil || !ok || !bytes.Equal(got, v(i)) {
			t.Fatalf("key %d: %q %v %v", i, got, ok, err)
		}
	}
	// The loaded store keeps working: routing matches the saved hash.
	if err := kv2.Put(k(n), v(n)); err != nil {
		t.Fatal(err)
	}
	// Per-shard contents must be identical to the original partitioning.
	for i := 0; i < 4; i++ {
		var orig, loaded []string
		if err := kv.ShardScan(i, nil, nil, func(key, _ []byte) bool {
			orig = append(orig, string(key))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if err := kv2.ShardScan(i, nil, nil, func(key, _ []byte) bool {
			if string(key) != string(k(n)) {
				loaded = append(loaded, string(key))
			}
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if strings.Join(orig, ",") != strings.Join(loaded, ",") {
			t.Fatalf("shard %d contents diverged after round trip", i)
		}
	}
}

// saveTestSnapshot builds a small sharded store and saves it, returning
// the snapshot bytes.
func saveTestSnapshot(t testing.TB, dir string, shards int) []byte {
	t.Helper()
	path := filepath.Join(dir, "seed.fasp")
	kv, err := OpenKV(Options{Shards: shards, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	for i := 0; i < 40; i++ {
		if err := kv.Put(k(i), v(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// writeRawSnapshot writes an arbitrary header + images through the same
// gzip+gob pipeline Save uses, for crafting corrupt-but-well-encoded files.
func writeRawSnapshot(t *testing.T, path string, hdr snapshotHeader, imgs [][]byte) {
	t.Helper()
	err := writeSnapshotAtomic(path, func(enc *gob.Encoder) error {
		if err := enc.Encode(hdr); err != nil {
			return err
		}
		for _, img := range imgs {
			if err := enc.Encode(img); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotCorruptionRejected: every damaged-file class is refused with
// ErrBadSnapshot — truncated stream, corrupted body, bad magic, and header
// fields no Save could have written (notably a zero shard count, which the
// restore loop would otherwise turn into a silently empty store).
func TestSnapshotCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	raw := saveTestSnapshot(t, dir, 2)
	goodHdr := snapshotHeader{
		Magic: snapshotMagic, Version: 2, Scheme: SchemeFASTPlus,
		PageSize: 1024, MaxPages: 16384, Shards: 2, MaxBatch: 64,
	}
	path := filepath.Join(dir, "corrupt.fasp")
	cases := []struct {
		name  string
		write func()
	}{
		{"truncated-gzip-header", func() { os.WriteFile(path, raw[:4], 0o644) }},
		{"truncated-mid-stream", func() { os.WriteFile(path, raw[:len(raw)/2], 0o644) }},
		{"flipped-byte-body", func() {
			bad := append([]byte(nil), raw...)
			bad[len(bad)*3/4] ^= 0x40
			os.WriteFile(path, bad, 0o644)
		}},
		{"bad-magic", func() {
			h := goodHdr
			h.Magic = "NOT-A-SNAPSHOT"
			writeRawSnapshot(t, path, h, nil)
		}},
		{"bad-version", func() {
			h := goodHdr
			h.Version = 9
			writeRawSnapshot(t, path, h, nil)
		}},
		{"zero-shard-count", func() {
			h := goodHdr
			h.Shards = 0
			writeRawSnapshot(t, path, h, nil)
		}},
		{"huge-shard-count", func() {
			h := goodHdr
			h.Shards = 1 << 20
			writeRawSnapshot(t, path, h, nil)
		}},
		{"implausible-page-size", func() {
			h := goodHdr
			h.PageSize = 7
			writeRawSnapshot(t, path, h, nil)
		}},
		{"missing-shard-image", func() {
			writeRawSnapshot(t, path, goodHdr, [][]byte{make([]byte, 64)})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.write()
			kv, err := OpenSnapshotKV(path, Options{})
			if err == nil {
				kv.Close()
				t.Fatal("corrupt snapshot accepted")
			}
			if !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("error not tagged ErrBadSnapshot: %v", err)
			}
		})
	}
	// The pristine file still loads — the harness itself is sound.
	os.WriteFile(path, raw, 0o644)
	kv, err := OpenSnapshotKV(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if c, err := kv.Count(); err != nil || c != 40 {
		t.Fatalf("count = %d, %v", c, err)
	}
}

// FuzzSnapshotLoad: arbitrary bytes must either load into a store that
// validates or fail cleanly — never panic, never return a broken store.
func FuzzSnapshotLoad(f *testing.F) {
	dir := f.TempDir()
	raw := saveTestSnapshot(f, dir, 2)
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte("not a snapshot at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.fasp")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		kv, err := OpenSnapshotKV(path, Options{})
		if err != nil {
			return
		}
		defer kv.Close()
		if err := kv.Validate(); err != nil {
			t.Fatalf("loaded snapshot fails validation: %v", err)
		}
	})
}

// TestSnapshotVersionGates: single-store loaders refuse sharded (v2)
// snapshots instead of misreading them.
func TestSnapshotVersionGates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "skv.fasp")
	kv, err := OpenKV(Options{Shards: 2, PageSize: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()
	if err := kv.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := kv.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshot(path, Options{}); err == nil {
		t.Fatal("OpenSnapshot accepted a sharded snapshot")
	}
	if _, err := OpenSnapshotHash(path, Options{}); err == nil {
		t.Fatal("OpenSnapshotHash accepted a sharded snapshot")
	}
}
