package main

// Sharded crash rounds (-shards N): the same randomised power-failure
// check, driven through the public facade against the sharded engine.
// Each round arms one shard's crash injector so the failure fires *inside*
// a group commit drained from concurrent clients, then applies an
// adversarial eviction lottery to every shard, recovers all of them, and
// verifies:
//
//   - every acknowledged operation survives on every shard;
//   - the un-acknowledged tail is bounded by the ops the engine reported
//     as ErrCrashed (a group commit may reach its commit mark and then
//     crash before the reply, so durable-but-unacknowledged is legal —
//     lost-acknowledged is not);
//   - every shard's tree is structurally valid.

import (
	"bytes"
	"errors"
	"fmt"
	"sync"

	"fasp"
	"fasp/internal/pmem"
)

// measureSharded learns the smallest per-shard crash-point budget from one
// uncrashed run, so random crash points usually land inside the workload.
// The mailbox path batches nondeterministically, so budgets vary slightly
// between rounds; a crash point past the end simply yields a no-crash
// round, which is still verified.
func measureSharded(scheme string, shards, clients, txns int) int64 {
	kv, err := fasp.OpenKV(fasp.Options{Scheme: scheme, PageSize: 256, Shards: shards})
	if err != nil {
		fail("open: %v", err)
	}
	defer kv.Close()
	runClients(kv, clients, txns, nil)
	min := int64(-1)
	for i := 0; i < shards; i++ {
		sys, err := kv.ShardSystem(i)
		if err != nil {
			fail("shard %d: %v", i, err)
		}
		if pts := sys.CrashPoints(); min < 0 || pts < min {
			min = pts
		}
	}
	return min
}

// ack records the outcome of every submitted op.
type ack struct {
	mu      sync.Mutex
	ok      map[int]bool
	crashed int
	hard    error
}

// runClients drives `clients` goroutines issuing txns Put operations each
// through the mailbox path, recording outcomes in a (nil-able) ack.
func runClients(kv *fasp.KV, clients, txns int, a *ack) {
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				id := c*txns + i
				err := kv.Put(key(id), val(id))
				if a == nil {
					if err != nil {
						fail("uncrashed put %d: %v", id, err)
					}
					continue
				}
				a.mu.Lock()
				switch {
				case err == nil:
					a.ok[id] = true
				case errors.Is(err, fasp.ErrShardCrashed):
					a.crashed++
				default:
					if a.hard == nil {
						a.hard = fmt.Errorf("op %d: %w", id, err)
					}
				}
				a.mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
}

// oneShardedRound arms the victim shard's injector at kpt, runs concurrent
// clients, crashes the whole store, recovers, and verifies.
func oneShardedRound(scheme string, shards, clients, txns int, victim int, kpt int64, opts pmem.CrashOptions) error {
	kv, err := fasp.OpenKV(fasp.Options{Scheme: scheme, PageSize: 256, Shards: shards})
	if err != nil {
		return err
	}
	defer kv.Close()
	vsys, err := kv.ShardSystem(victim)
	if err != nil {
		return err
	}
	vsys.CrashAfter(kpt)

	a := &ack{ok: map[int]bool{}}
	runClients(kv, clients, txns, a)
	if a.hard != nil {
		return dumpTrace(kv, a.hard)
	}

	// Power failure across the whole store (per-shard eviction lottery),
	// then recovery of every shard.
	kv.Crash(opts)
	if err := kv.ReopenKV(); err != nil {
		return dumpTrace(kv, fmt.Errorf("recover: %w", err))
	}
	if err := kv.Validate(); err != nil {
		return dumpTrace(kv, fmt.Errorf("tree invalid: %w", err))
	}
	for id := range a.ok {
		got, ok, err := kv.Get(key(id))
		if err != nil || !ok {
			return dumpTrace(kv, fmt.Errorf("acknowledged key %d missing (err=%v)", id, err))
		}
		if !bytes.Equal(got, val(id)) {
			return dumpTrace(kv, fmt.Errorf("acknowledged key %d corrupt", id))
		}
	}
	count, err := kv.Count()
	if err != nil {
		return err
	}
	if count < len(a.ok) || count > len(a.ok)+a.crashed {
		return dumpTrace(kv, fmt.Errorf("recovered %d keys, acknowledged %d, crashed-unacknowledged %d",
			count, len(a.ok), a.crashed))
	}
	return nil
}

// dumpTrace prints the store's sampled commit-path traces on a violation,
// so a failing round carries its own per-transaction event evidence
// (batch sizes, clflush/fence counts, simulated latencies) alongside the
// repro spec. The error passes through unchanged.
func dumpTrace(kv *fasp.KV, cause error) error {
	samples := kv.TraceSample()
	if len(samples) == 0 {
		return cause
	}
	// The most recent samples are the ones that surround the crash.
	const show = 16
	if len(samples) > show {
		samples = samples[len(samples)-show:]
	}
	fmt.Printf("  trace sample (%d most recent transactions):\n", len(samples))
	for _, s := range samples {
		fmt.Printf("    seq=%d shard=%d %s ops=%d sim=%dns wall=%dns clflush=%d fence=%d htm=%d/%d log=%d ckpt=%d\n",
			s.Seq, s.Shard, s.Op, s.Ops, s.SimNS, s.WallNS,
			s.Events.Flush, s.Events.Fence, s.Events.HTMCommit, s.Events.HTMAbort,
			s.Events.LogAppend, s.Events.Checkpoint)
	}
	return cause
}
