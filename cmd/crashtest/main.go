// Command crashtest is a randomised crash-injection recovery checker: it
// runs a workload on a chosen scheme, fires a simulated power failure at a
// random architectural event (word store or cache-line flush), applies an
// adversarial eviction lottery, recovers, and verifies that the recovered
// tree is structurally valid and contains exactly the committed
// transactions. It repeats for -rounds rounds and reports a summary.
//
// Usage:
//
//	crashtest -rounds 200 -scheme fast+ -seed 1
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fasp/internal/btree"
	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/wal"
)

func main() {
	var (
		rounds  = flag.Int("rounds", 100, "crash rounds to run")
		scheme  = flag.String("scheme", "fast+", "fast+|fast|nvwal|wal|journal")
		seed    = flag.Int64("seed", 1, "master seed")
		txns    = flag.Int("txns", 30, "insert transactions per round (per client when sharded)")
		shards  = flag.Int("shards", 0, "run the sharded engine with this many shards (0/1 = classic single store)")
		clients = flag.Int("clients", 4, "with -shards: concurrent client goroutines")
	)
	flag.Parse()

	cfgPageSize := 256
	master := rand.New(rand.NewSource(*seed))

	if *shards > 1 {
		total := measureSharded(*scheme, *shards, *clients, *txns)
		fmt.Printf("crashtest: %s, %d shards, %d clients x %d txns/round, ≥%d crash points per shard, %d rounds\n",
			*scheme, *shards, *clients, *txns, total, *rounds)
		failures := 0
		evictHist := map[string]int{}
		for round := 0; round < *rounds; round++ {
			victim := master.Intn(*shards)
			kpt := master.Int63n(total)
			prob := []float64{0, 0.5, 1}[master.Intn(3)]
			evictHist[fmt.Sprintf("p=%.1f", prob)]++
			opts := pmem.CrashOptions{Seed: master.Int63(), EvictProb: prob}
			if err := oneShardedRound(*scheme, *shards, *clients, *txns, victim, kpt, opts); err != nil {
				failures++
				fmt.Printf("round %d: shard %d crash@%d evict=%.1f: %v\n", round, victim, kpt, prob, err)
			}
		}
		fmt.Printf("crashtest: %d/%d sharded rounds passed (%v)\n", *rounds-failures, *rounds, evictHist)
		if failures > 0 {
			os.Exit(1)
		}
		return
	}

	// Learn the crash-point budget from one uncrashed run.
	total := measure(*scheme, cfgPageSize, *txns)
	fmt.Printf("crashtest: %s, %d txns/round, %d crash points per run, %d rounds\n",
		*scheme, *txns, total, *rounds)

	failures := 0
	evictHist := map[string]int{}
	for round := 0; round < *rounds; round++ {
		kpt := master.Int63n(total)
		prob := []float64{0, 0.5, 1}[master.Intn(3)]
		evictHist[fmt.Sprintf("p=%.1f", prob)]++
		if err := oneRound(*scheme, cfgPageSize, *txns, kpt, pmem.CrashOptions{Seed: master.Int63(), EvictProb: prob}); err != nil {
			failures++
			fmt.Printf("round %d: crash@%d evict=%.1f: %v\n", round, kpt, prob, err)
		}
	}
	fmt.Printf("crashtest: %d/%d rounds passed (%v)\n", *rounds-failures, *rounds, evictHist)
	if failures > 0 {
		os.Exit(1)
	}
}

// fail prints a fatal setup error and exits.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashtest: "+format+"\n", args...)
	os.Exit(1)
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }
func val(i int) []byte { return bytes.Repeat([]byte{byte('a' + i%26)}, 40) }
func mkStore(scheme string, pageSize int, sys *pmem.System) pager.Store {
	switch scheme {
	case "fast":
		return fast.Create(sys, fast.Config{PageSize: pageSize, MaxPages: 4096, Variant: fast.SlotHeaderLogging})
	case "fast+":
		return fast.Create(sys, fast.Config{PageSize: pageSize, MaxPages: 4096, Variant: fast.InPlaceCommit})
	case "nvwal":
		return wal.Create(sys, wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: wal.NVWAL})
	case "wal":
		return wal.Create(sys, wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: wal.FullWAL})
	case "journal":
		return wal.Create(sys, wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: wal.Journal})
	default:
		fmt.Fprintf(os.Stderr, "crashtest: unknown scheme %q\n", scheme)
		os.Exit(2)
		return nil
	}
}

func reattach(scheme string, pageSize int, st pager.Store) (pager.Store, error) {
	switch s := st.(type) {
	case *fast.Store:
		variant := fast.InPlaceCommit
		if scheme == "fast" {
			variant = fast.SlotHeaderLogging
		}
		ns, err := fast.Attach(s.Arena(), fast.Config{PageSize: pageSize, MaxPages: 4096, Variant: variant})
		if err != nil {
			return nil, err
		}
		return ns, ns.Recover()
	case *wal.Store:
		kind := wal.NVWAL
		switch scheme {
		case "wal":
			kind = wal.FullWAL
		case "journal":
			kind = wal.Journal
		}
		ns, err := wal.Attach(s.Arena(), wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: kind})
		if err != nil {
			return nil, err
		}
		return ns, ns.Recover()
	}
	return nil, fmt.Errorf("unknown store")
}

func measure(scheme string, pageSize, txns int) int64 {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := mkStore(scheme, pageSize, sys)
	tr := btree.New(st)
	base := sys.CrashPoints()
	for i := 0; i < txns; i++ {
		if err := tr.Insert(key(i), val(i)); err != nil {
			fmt.Fprintf(os.Stderr, "crashtest: measure: %v\n", err)
			os.Exit(1)
		}
	}
	return sys.CrashPoints() - base
}

func oneRound(scheme string, pageSize, txns int, kpt int64, opts pmem.CrashOptions) error {
	sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
	st := mkStore(scheme, pageSize, sys)
	tr := btree.New(st)
	committed := 0
	sys.CrashAfter(kpt)
	sys.RunToCrash(func() {
		for i := 0; i < txns; i++ {
			if err := tr.Insert(key(i), val(i)); err != nil {
				panic(err)
			}
			committed++
		}
	})
	sys.Crash(opts)

	st2, err := reattach(scheme, pageSize, st)
	if err != nil {
		return fmt.Errorf("recover: %w", err)
	}
	tr2 := btree.New(st2)
	tx, err := tr2.Begin()
	if err != nil {
		return err
	}
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		return fmt.Errorf("tree invalid: %w", err)
	}
	count, err := tx.Count()
	if err != nil {
		return err
	}
	for i := 0; i < committed; i++ {
		got, ok, err := tx.Get(key(i))
		if err != nil || !ok {
			return fmt.Errorf("committed key %d missing", i)
		}
		if !bytes.Equal(got, val(i)) {
			return fmt.Errorf("committed key %d corrupt", i)
		}
	}
	if count != committed && count != committed+1 {
		return fmt.Errorf("recovered %d keys, committed %d", count, committed)
	}
	return nil
}
