// Command crashtest is a crash-injection recovery checker with two single-
// store modes and a sharded mode:
//
//   - Random mode (default): -rounds random (crash point, eviction lottery)
//     schedules, the original smoke test.
//   - Exhaustive mode (-exhaustive): the internal/crashx explorer measures
//     the workload's crash-point count, enumerates every crash point up to
//     -budget (0 = all of them, stratified-sampling -samples points past a
//     nonzero budget), sweeps eviction lotteries per point, and checks an
//     exact-state durability oracle after recovery. With -nested it
//     additionally injects a second crash at recovery's own crash points
//     and recovers again, proving recovery idempotent.
//   - Sharded mode (-shards N): concurrent clients against the sharded
//     engine with a crash injected inside one shard's group commit.
//
// Every schedule is deterministic: a violation prints a -repro spec that
// replays the identical failure byte-for-byte:
//
//	crashtest -exhaustive -nested -scheme fast+ -txns 30
//	crashtest -scheme fast+ -txns 30 -repro '734:0.5:12345'
//
// Any oracle violation makes the process exit non-zero; by default it
// stops at the first one (use -keep-going to collect them all).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"fasp/internal/crashx"
	"fasp/internal/fast"
	"fasp/internal/pager"
	"fasp/internal/pmem"
	"fasp/internal/wal"
)

func main() {
	var (
		rounds  = flag.Int("rounds", 100, "random mode: crash rounds to run")
		scheme  = flag.String("scheme", "fast+", "fast+|fast|nvwal|wal|journal")
		seed    = flag.Int64("seed", 1, "master seed")
		txns    = flag.Int("txns", 30, "workload transactions per run (per client when sharded)")
		shards  = flag.Int("shards", 0, "run the sharded engine with this many shards (0/1 = classic single store)")
		clients = flag.Int("clients", 4, "with -shards: concurrent client goroutines")

		exhaustive = flag.Bool("exhaustive", false, "enumerate crash schedules with the crashx explorer")
		nested     = flag.Bool("nested", false, "with -exhaustive: inject a second crash inside recovery")
		budget     = flag.Int("budget", 0, "with -exhaustive: crash points enumerated from 0 (0 = every point)")
		samples    = flag.Int("samples", 64, "with -exhaustive: stratified samples past the budget")
		lotteries  = flag.Int("lotteries", 2, "with -exhaustive: seeded p=0.5 eviction lotteries per point (plus evict-none/evict-all)")
		nbudget    = flag.Int("nested-budget", 0, "with -nested: recovery crash points enumerated per schedule (0 = every point)")
		nsamples   = flag.Int("nested-samples", 16, "with -nested: stratified samples past the nested budget")
		repro      = flag.String("repro", "", "replay one failing schedule spec (point:prob:seed[/recpoint:recprob:recseed]) and exit")
		keepGoing  = flag.Bool("keep-going", false, "collect every violation instead of stopping at the first")
	)
	flag.Parse()

	const cfgPageSize = 256

	if *shards > 1 {
		runSharded(*scheme, *shards, *clients, *txns, *rounds, *seed, *keepGoing)
		return
	}

	cfg := explorerConfig(*scheme, cfgPageSize, *txns)
	cfg.Seed = *seed

	switch {
	case *repro != "":
		runRepro(cfg, *scheme, *txns, *repro)
	case *exhaustive:
		cfg.Budget = *budget
		cfg.Samples = *samples
		cfg.Lotteries = *lotteries
		cfg.Nested = *nested
		cfg.NestedBudget = *nbudget
		cfg.NestedSamples = *nsamples
		runExhaustive(cfg, *scheme, *txns, *keepGoing)
	default:
		runRandom(cfg, *scheme, *txns, *rounds, *seed, *keepGoing)
	}
}

// lastRun stashes the machine and store of the most recently opened
// schedule, so a violation can dump the run's commit-path counters (the
// explorer runs schedules sequentially).
var lastRun struct {
	sys *pmem.System
	st  pager.Store
}

// explorerConfig wires crashx to this command's store constructors.
func explorerConfig(scheme string, pageSize, txns int) *crashx.Config {
	return &crashx.Config{
		Open: func() (*pmem.System, pager.Store) {
			sys := pmem.NewSystem(pmem.DefaultLatencies(300, 300))
			st := mkStore(scheme, pageSize, sys)
			lastRun.sys, lastRun.st = sys, st
			return sys, st
		},
		Reattach: func(st pager.Store) (pager.Store, error) {
			return reattach(scheme, pageSize, st)
		},
		Workload: crashx.DefaultWorkload(txns),
	}
}

// dumpMachine prints the failing run's machine-level commit-path evidence
// (simulated clock, fences, PM event counters, phase totals) — the
// single-store analogue of the sharded mode's recorder trace dump.
func dumpMachine() {
	sys := lastRun.sys
	if sys == nil {
		return
	}
	fmt.Printf("  machine at failure: sim=%dns fences=%d crash-points=%d\n",
		sys.Clock().Now(), sys.Fences(), sys.CrashPoints())
	if a, ok := lastRun.st.(interface{ Arena() *pmem.Arena }); ok {
		s := a.Arena().Stats()
		fmt.Printf("  pm: clflush=%d writebacks=%d stores=%d (%dB) fills=%d hits=%d\n",
			s.FlushCalls, s.LineWritebacks, s.WordStores, s.BytesStored, s.LineFills, s.CacheHits)
	}
	phases := sys.Clock().Phases()
	names := make([]string, 0, len(phases))
	for name := range phases {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("  phases:")
	for _, name := range names {
		fmt.Printf(" %s=%dns", name, phases[name])
	}
	fmt.Println()
}

// reproCmd renders the one-command reproduction for a failing schedule.
func reproCmd(scheme string, txns int, spec crashx.Spec) string {
	return fmt.Sprintf("go run ./cmd/crashtest -scheme %s -txns %d -repro '%s'", scheme, txns, spec)
}

// runRepro replays one pinned schedule and reports its exact outcome.
func runRepro(cfg *crashx.Config, scheme string, txns int, spec string) {
	s, err := crashx.ParseSpec(spec)
	if err != nil {
		fail("%v", err)
	}
	res := crashx.Run(cfg, s)
	fmt.Printf("crashtest: %s, %d txns, spec %s: crashed=%v acked=%d recCrashed=%v\n",
		scheme, txns, s, res.Crashed, res.Acked, res.RecCrashed)
	if res.Err != nil {
		fmt.Printf("VIOLATION: %v\n", res.Err)
		dumpMachine()
		os.Exit(1)
	}
	fmt.Println("ok: schedule recovers cleanly")
}

// runExhaustive drives the crashx explorer and reports its schedule
// coverage, printing each violation's repro command the moment it is found.
func runExhaustive(cfg *crashx.Config, scheme string, txns int, keepGoing bool) {
	if keepGoing {
		cfg.MaxFailures = 1 << 30
	}
	cfg.OnFailure = func(f crashx.Failure) {
		fmt.Printf("VIOLATION at %s: %s\n  reproduce: %s\n", f.Spec, f.Err, reproCmd(scheme, txns, f.Spec))
		dumpMachine()
	}
	lastPct := -1
	cfg.Progress = func(done, total, runs int) {
		if pct := done * 10 / total; pct > lastPct {
			lastPct = pct
			fmt.Printf("crashtest: %d/%d points explored (%d runs)\n", done, total, runs)
		}
	}
	rep, err := crashx.Explore(cfg)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("crashtest: %s, %d txns, %d crash points (%d enumerated + %d sampled), %d lotteries/point, %d runs (%d nested)\n",
		scheme, txns, rep.TotalPoints, rep.Enumerated, rep.Sampled, rep.LotteriesPerPoint, rep.Runs, rep.NestedRuns)
	if !rep.Ok() {
		fmt.Printf("crashtest: %d violation(s)\n", len(rep.Failures))
		os.Exit(1)
	}
	fmt.Println("crashtest: all schedules recover cleanly")
}

// runRandom keeps the original randomised smoke test, rebuilt on crashx:
// each round replays one random schedule through the same oracle the
// explorer uses, so failures carry the same reproducible spec.
func runRandom(cfg *crashx.Config, scheme string, txns, rounds int, seed int64, keepGoing bool) {
	total, err := crashx.Measure(cfg)
	if err != nil {
		fail("%v", err)
	}
	fmt.Printf("crashtest: %s, %d txns/round, %d crash points per run, %d rounds\n",
		scheme, txns, total, rounds)
	master := rand.New(rand.NewSource(seed))
	failures := 0
	evictHist := map[string]int{}
	for round := 0; round < rounds; round++ {
		prob := []float64{0, 0.5, 1}[master.Intn(3)]
		evictHist[fmt.Sprintf("p=%.1f", prob)]++
		spec := crashx.Spec{
			Point:    master.Int63n(total),
			Evict:    pmem.CrashOptions{Seed: master.Int63(), EvictProb: prob},
			RecPoint: -1,
		}
		if res := crashx.Run(cfg, spec); res.Err != nil {
			failures++
			fmt.Printf("round %d: VIOLATION at %s: %v\n  reproduce: %s\n",
				round, spec, res.Err, reproCmd(scheme, txns, spec))
			dumpMachine()
			if !keepGoing {
				os.Exit(1)
			}
		}
	}
	fmt.Printf("crashtest: %d/%d rounds passed (%v)\n", rounds-failures, rounds, evictHist)
	if failures > 0 {
		os.Exit(1)
	}
}

// runSharded drives the randomised sharded-engine rounds.
func runSharded(scheme string, shards, clients, txns, rounds int, seed int64, keepGoing bool) {
	master := rand.New(rand.NewSource(seed))
	total := measureSharded(scheme, shards, clients, txns)
	fmt.Printf("crashtest: %s, %d shards, %d clients x %d txns/round, ≥%d crash points per shard, %d rounds\n",
		scheme, shards, clients, txns, total, rounds)
	failures := 0
	evictHist := map[string]int{}
	for round := 0; round < rounds; round++ {
		victim := master.Intn(shards)
		kpt := master.Int63n(total)
		prob := []float64{0, 0.5, 1}[master.Intn(3)]
		evictHist[fmt.Sprintf("p=%.1f", prob)]++
		opts := pmem.CrashOptions{Seed: master.Int63(), EvictProb: prob}
		if err := oneShardedRound(scheme, shards, clients, txns, victim, kpt, opts); err != nil {
			failures++
			fmt.Printf("round %d: VIOLATION shard %d crash@%d evict=%.1f seed=%d: %v\n",
				round, victim, kpt, prob, opts.Seed, err)
			if !keepGoing {
				os.Exit(1)
			}
		}
	}
	fmt.Printf("crashtest: %d/%d sharded rounds passed (%v)\n", rounds-failures, rounds, evictHist)
	if failures > 0 {
		os.Exit(1)
	}
}

// fail prints a fatal setup error and exits.
func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crashtest: "+format+"\n", args...)
	os.Exit(1)
}

func key(i int) []byte { return []byte(fmt.Sprintf("k%06d", i)) }
func val(i int) []byte { return bytes.Repeat([]byte{byte('a' + i%26)}, 40) }

func mkStore(scheme string, pageSize int, sys *pmem.System) pager.Store {
	switch scheme {
	case "fast":
		return fast.Create(sys, fast.Config{PageSize: pageSize, MaxPages: 4096, Variant: fast.SlotHeaderLogging})
	case "fast+":
		return fast.Create(sys, fast.Config{PageSize: pageSize, MaxPages: 4096, Variant: fast.InPlaceCommit})
	case "nvwal":
		return wal.Create(sys, wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: wal.NVWAL})
	case "wal":
		return wal.Create(sys, wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: wal.FullWAL})
	case "journal":
		return wal.Create(sys, wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: wal.Journal})
	default:
		fmt.Fprintf(os.Stderr, "crashtest: unknown scheme %q\n", scheme)
		os.Exit(2)
		return nil
	}
}

func reattach(scheme string, pageSize int, st pager.Store) (pager.Store, error) {
	switch s := st.(type) {
	case *fast.Store:
		variant := fast.InPlaceCommit
		if scheme == "fast" {
			variant = fast.SlotHeaderLogging
		}
		ns, err := fast.Attach(s.Arena(), fast.Config{PageSize: pageSize, MaxPages: 4096, Variant: variant})
		if err != nil {
			return nil, err
		}
		return ns, ns.Recover()
	case *wal.Store:
		kind := wal.NVWAL
		switch scheme {
		case "wal":
			kind = wal.FullWAL
		case "journal":
			kind = wal.Journal
		}
		ns, err := wal.Attach(s.Arena(), wal.Config{PageSize: pageSize, MaxPages: 4096, Kind: kind})
		if err != nil {
			return nil, err
		}
		return ns, ns.Recover()
	}
	return nil, fmt.Errorf("unknown store")
}
