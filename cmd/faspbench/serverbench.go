package main

// Network server benchmark mode (-serverbench): starts an in-process
// faspserver over a sharded KV and drives it with the many-client load
// generator, producing the BENCH_PR10.json trajectory point. Four arms:
//
//   conns=1      — the single-connection baseline (no cross-connection
//                  coalescing possible);
//   conns=N      — the many-client arm (default 256) on the per-shard
//                  commit pipelines, where each shard's loop drains many
//                  connections' writes into combined group commits while
//                  the next round accumulates;
//   global       — the same many-client workload on the global-batcher
//                  fallback (Config.GlobalBatcher), the pre-pipeline
//                  architecture: one round at a time, all shards barriered
//                  per round. This is the A/B control arm.
//   overload     — a deliberately tiny in-flight gate flooded by the same
//                  client count, asserting the shedding contract: typed
//                  BUSY responses, zero dropped connections.
//
// The acceptance targets (mean commit width > 1 and throughput ≥ 4× the
// 1-connection arm at the many-client point; pipelined simulated write
// throughput ≥ 1.5× the global-batcher arm with per-shard coalesce width
// > 1; overload sheds with BUSY, not disconnects) are recorded in the
// report; -sb-strict makes a missed target a non-zero exit.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"fasp"
	"fasp/internal/obsv"
	"fasp/internal/server"
	"fasp/internal/server/loadgen"
)

// ServerArm is one load-generation arm with its engine-side coalescing
// evidence: MeanCommitWidth is Δops/Δbatches over the arm — the average
// number of operations per committed failure-atomic transaction.
//
// Two throughput views, following the shardbench convention: wall-clock
// ops/s measures how fast the emulation runs on the host (on a
// single-CPU host every in-process arm is CPU-bound, so client
// concurrency cannot show up in it), while simulated ops/s is
// machine-independent: engine ops over the simulated time the emulated
// PM cluster needs to serve the arm.
//
// The simulated elapsed time must respect the arm's offered concurrency.
// Shardbench sidesteps this (its baseline is shards=1, where the busiest
// shard IS the whole machine), but here both arms run the same shard
// count, and a single synchronous connection cannot keep eight shard
// clocks busy at once: each of its commits runs on one shard while the
// other seven sit idle waiting for the client's next request. So each
// arm's elapsed is the larger of the two classic makespan lower bounds:
//
//	elapsed = max(ΔSimMaxNS, ΔSimSumNS / min(concurrency, shards))
//
// — the busiest-shard critical path, or total simulated work divided by
// the number of shards the arm's in-flight ops (conns × pipeline ×
// batch) can actually occupy. At 256 connections this reduces to the
// busiest shard (the work bound is slack); at one synchronous connection
// it reduces to ΔSimSumNS, the serial chain of that client's commits.
// Cross-connection group commit then shows up in the ratio twice, as it
// would on real hardware: many clients keep every shard busy, and the
// per-commit protocol cost is amortised across the coalesced batch.
// The global-batcher control arm additionally pays its architecture's
// barrier: rounds are serialized — round k+1 cannot start until round k
// commits on every shard it touched — so its simulated elapsed is the sum
// over rounds of the busiest shard in each round (BarrierSimNS, sampled
// by the server around every round), whichever of the three bounds binds.
type ServerArm struct {
	Name string `json:"name"`
	loadgen.Result
	Pipeline        int     `json:"pipeline"`
	GlobalBatcher   bool    `json:"global_batcher,omitempty"`
	EngineOps       int64   `json:"engine_ops"`
	EngineBatches   int64   `json:"engine_batches"`
	MeanCommitWidth float64 `json:"mean_commit_width"`
	CoalesceMean    float64 `json:"server_submit_width_mean"`
	// ShardCoalesceMean / PipeOccupancyMean are the per-shard pipeline's
	// round width and per-round connection join count (zero on the
	// global-batcher arm, which has no per-shard rounds).
	ShardCoalesceMean float64 `json:"shard_coalesce_mean,omitempty"`
	PipeOccupancyMean float64 `json:"pipe_occupancy_mean,omitempty"`
	BarrierSimNS      int64   `json:"barrier_sim_ns,omitempty"`
	SimMaxNS          int64   `json:"sim_max_ns"`
	SimSumNS          int64   `json:"sim_sum_ns"`
	SimElapsedNS      int64   `json:"sim_elapsed_ns"`
	SimOpsPerSec      float64 `json:"sim_ops_per_sec"`
}

// ServerBenchReport is the JSON document emitted by -serverbench.
type ServerBenchReport struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	CPUs      int    `json:"cpus"`
	Shards    int    `json:"shards"`
	ValueSize int    `json:"value_size"`
	Pipeline  int    `json:"pipeline"`
	BatchSize int    `json:"batch_size"`

	Arms     []ServerArm `json:"arms"`
	Overload ServerArm   `json:"overload"`

	// SpeedupVs1Conn is the machine-independent (simulated) throughput
	// ratio of the many-client arm over the 1-connection arm; WallSpeedup
	// is the host wall-clock ratio for reference (≈1 on a 1-CPU host).
	SpeedupVs1Conn float64 `json:"throughput_speedup_vs_1conn"`
	WallSpeedup    float64 `json:"wall_speedup_vs_1conn"`
	TargetSpeedup  float64 `json:"target_speedup"`
	// SpeedupVsGlobal is the A/B headline: the pipelined many-client
	// arm's simulated write throughput over the global-batcher arm's on
	// the same workload and config.
	SpeedupVsGlobal       float64  `json:"throughput_speedup_vs_global"`
	TargetSpeedupVsGlobal float64  `json:"target_speedup_vs_global"`
	TargetsMet            bool     `json:"targets_met"`
	Notes                 []string `json:"notes,omitempty"`
}

// serverBenchConfig carries the -sb-* flags.
type serverBenchConfig struct {
	out         string
	conns       int
	dur         time.Duration
	valueSize   int
	batchSize   int
	pipeline    int
	overInflit  int
	shards      int
	scheme      string
	pageSize    int
	maxBatch    int
	seed        int64
	metricsAddr string
	scrape      bool
	strict      bool
}

// runServerArm opens a fresh KV+server, runs one loadgen arm against it,
// and reports throughput plus the engine's commit-width delta.
func runServerArm(name string, sc serverBenchConfig, conns, pipeline, maxInFlight int, global, scrapeNow bool) (ServerArm, error) {
	arm := ServerArm{Name: name, Pipeline: pipeline, GlobalBatcher: global}
	kv, err := fasp.OpenKV(fasp.Options{Shards: sc.shards, Scheme: sc.scheme, MaxBatch: sc.maxBatch, PageSize: sc.pageSize})
	if err != nil {
		return arm, err
	}
	defer kv.Close()
	srv := server.New(kv, server.Config{MaxInFlight: maxInFlight, GlobalBatcher: global})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return arm, err
	}
	go srv.Serve()
	defer srv.Shutdown()

	st0 := kv.EngineStats()
	res, err := loadgen.Run(loadgen.Config{
		Addr:      addr,
		Conns:     conns,
		Duration:  sc.dur,
		Pipeline:  pipeline,
		ValueSize: sc.valueSize,
		BatchSize: sc.batchSize,
		Seed:      sc.seed,
	})
	if err != nil {
		return arm, err
	}
	st1 := kv.EngineStats()
	arm.Result = res
	arm.EngineOps = st1.Ops - st0.Ops
	arm.EngineBatches = st1.Batches - st0.Batches
	if arm.EngineBatches > 0 {
		arm.MeanCommitWidth = float64(arm.EngineOps) / float64(arm.EngineBatches)
	}
	snap := srv.Snapshot()
	arm.CoalesceMean = snap.Coalesce.Mean()
	arm.ShardCoalesceMean = snap.ShardCoalesce.Mean()
	arm.PipeOccupancyMean = snap.PipeOccupancy.Mean()
	arm.BarrierSimNS = snap.BarrierSimNS
	arm.SimMaxNS = st1.SimMaxNS - st0.SimMaxNS
	arm.SimSumNS = st1.SimSumNS - st0.SimSumNS
	// Makespan lower bound at the arm's offered concurrency (see the
	// ServerArm doc comment): busiest shard, or total work spread over the
	// shards the arm's in-flight ops can occupy, whichever binds — and,
	// on the global-batcher arm, the serialized-round barrier sum.
	occupancy := conns * pipeline * sc.batchSize
	if occupancy > sc.shards {
		occupancy = sc.shards
	}
	if occupancy < 1 {
		occupancy = 1
	}
	arm.SimElapsedNS = arm.SimMaxNS
	if work := arm.SimSumNS / int64(occupancy); work > arm.SimElapsedNS {
		arm.SimElapsedNS = work
	}
	if arm.BarrierSimNS > arm.SimElapsedNS {
		arm.SimElapsedNS = arm.BarrierSimNS
	}
	if arm.SimElapsedNS > 0 {
		arm.SimOpsPerSec = float64(arm.EngineOps) / (float64(arm.SimElapsedNS) / 1e9)
	}

	if scrapeNow && sc.metricsAddr != "" {
		if err := scrapeServerMetrics(sc.metricsAddr, sc.scrape); err != nil {
			return arm, err
		}
	}
	return arm, nil
}

// scrapeServerMetrics serves /metrics while the server source is still
// registered and (with scrape) validates the exposition carries the
// fasp_server_* series.
func scrapeServerMetrics(addr string, scrape bool) error {
	ms, err := fasp.ServeMetrics(addr)
	if err != nil {
		return fmt.Errorf("metrics exporter: %w", err)
	}
	defer ms.Close()
	fmt.Fprintf(os.Stderr, "metrics exporter listening on http://%s/metrics\n", ms.Addr())
	if !scrape {
		return nil
	}
	resp, err := http.Get("http://" + ms.Addr() + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape: status %d", resp.StatusCode)
	}
	if err := obsv.ValidatePrometheus(body); err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	for _, want := range []string{
		"fasp_server_requests_total", "fasp_server_connections_total",
		"fasp_server_coalesce_width_bucket", "fasp_server_inflight_limit",
	} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("scrape: series %q missing from /metrics", want)
		}
	}
	fmt.Fprintf(os.Stderr, "scrape ok: %d bytes of valid Prometheus text\n", len(body))
	return nil
}

// runServerBench runs all three arms and writes the report.
func runServerBench(sc serverBenchConfig) error {
	rep := ServerBenchReport{
		Generated:             time.Now().UTC().Format(time.RFC3339),
		GoVersion:             runtime.Version(),
		CPUs:                  runtime.NumCPU(),
		Shards:                sc.shards,
		ValueSize:             sc.valueSize,
		Pipeline:              sc.pipeline,
		BatchSize:             sc.batchSize,
		TargetSpeedup:         4,
		TargetSpeedupVsGlobal: 1.5,
	}

	report := func(a ServerArm) {
		fmt.Fprintf(os.Stderr,
			"%-10s conns=%-4d acked=%-8d wall %9.0f ops/s  sim %10.0f ops/s  commit-width=%.1f  busy=%-6d drops=%d  p99=%s\n",
			a.Name, a.Conns, a.OpsAcked, a.ThroughputOps, a.SimOpsPerSec, a.MeanCommitWidth,
			a.Busy, a.ConnDrops, time.Duration(a.LatP99NS))
	}

	// The baseline is the canonical single client: one connection, one
	// request outstanding (pipeline 1), so every commit is the full
	// serial round trip a lone caller experiences.
	base, err := runServerArm("conns1", sc, 1, 1, 0, false, false)
	if err != nil {
		return fmt.Errorf("conns1 arm: %w", err)
	}
	report(base)
	rep.Arms = append(rep.Arms, base)

	many, err := runServerArm(fmt.Sprintf("conns%d", sc.conns), sc, sc.conns, sc.pipeline, 0, false, true)
	if err != nil {
		return fmt.Errorf("many-client arm: %w", err)
	}
	report(many)
	rep.Arms = append(rep.Arms, many)

	// A/B control: identical workload and config on the global-batcher
	// fallback — the pre-pipeline architecture.
	global, err := runServerArm("global", sc, sc.conns, sc.pipeline, 0, true, false)
	if err != nil {
		return fmt.Errorf("global-batcher arm: %w", err)
	}
	report(global)
	rep.Arms = append(rep.Arms, global)

	over, err := runServerArm("overload", sc, sc.conns, sc.pipeline, sc.overInflit, false, false)
	if err != nil {
		return fmt.Errorf("overload arm: %w", err)
	}
	report(over)
	rep.Overload = over

	if base.SimOpsPerSec > 0 {
		rep.SpeedupVs1Conn = many.SimOpsPerSec / base.SimOpsPerSec
	}
	if base.ThroughputOps > 0 {
		rep.WallSpeedup = many.ThroughputOps / base.ThroughputOps
	}
	rep.TargetsMet = true
	miss := func(format string, a ...any) {
		rep.TargetsMet = false
		rep.Notes = append(rep.Notes, fmt.Sprintf(format, a...))
	}
	if rep.SpeedupVs1Conn < rep.TargetSpeedup {
		miss("speedup %.2fx < target %.0fx", rep.SpeedupVs1Conn, rep.TargetSpeedup)
	}
	if many.MeanCommitWidth <= 1 {
		miss("mean commit width %.2f at conns=%d not > 1", many.MeanCommitWidth, many.Conns)
	}
	if global.SimOpsPerSec > 0 {
		rep.SpeedupVsGlobal = many.SimOpsPerSec / global.SimOpsPerSec
	}
	if rep.SpeedupVsGlobal < rep.TargetSpeedupVsGlobal {
		miss("pipelined vs global speedup %.2fx < target %.1fx", rep.SpeedupVsGlobal, rep.TargetSpeedupVsGlobal)
	}
	if many.ShardCoalesceMean <= 1 {
		miss("per-shard coalesce width %.2f in pipelined arm not > 1", many.ShardCoalesceMean)
	}
	if over.Busy == 0 {
		miss("overload arm saw no BUSY sheds")
	}
	if over.ConnDrops != 0 {
		miss("overload arm dropped %d connections", over.ConnDrops)
	}
	if over.Errors != 0 {
		miss("overload arm saw %d untyped errors", over.Errors)
	}
	fmt.Fprintf(os.Stderr, "speedup vs 1 conn: %.2fx (target %.0fx); pipelined vs global: %.2fx (target %.1fx, shard width %.1f); targets met: %v %v\n",
		rep.SpeedupVs1Conn, rep.TargetSpeedup, rep.SpeedupVsGlobal, rep.TargetSpeedupVsGlobal,
		many.ShardCoalesceMean, rep.TargetsMet, rep.Notes)

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if sc.out == "-" {
		_, err = os.Stdout.Write(out)
	} else {
		err = os.WriteFile(sc.out, out, 0o644)
	}
	if err != nil {
		return err
	}
	if sc.strict && !rep.TargetsMet {
		return fmt.Errorf("targets missed: %s", strings.Join(rep.Notes, "; "))
	}
	return nil
}
