package main

// Read-heavy benchmark mode (-readbench): measures the optimistic
// concurrent read path through the public facade. Each point preloads a
// sharded KV, then runs a mixed phase — one writer goroutine issuing Puts,
// R reader goroutines issuing Gets over the preloaded keys — and reports
// both wall-clock and simulated read throughput.
//
// Two arms per read fraction, each swept over the reader counts. Simulated
// elapsed time for a point is max(read work / R, slowest shard's clock
// delta). In the locked arm (DisableOptimisticReads — the pre-optimisation
// baseline) every read serialises behind its shard's lock and advances that
// shard's clock, so the second term grows with read volume and caps the
// scaling. In the optimistic arm reads are invisible to shard clocks, so
// the floor is only the write traffic and read throughput scales with R.
// The single-reader optimistic-vs-locked comparison is the latency-parity
// check; the optimistic reader sweep is the scaling series.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fasp"
	"fasp/internal/obsv"
	"fasp/internal/shard"
)

// ReadBenchPoint is one (readFrac, readers, arm) measurement.
type ReadBenchPoint struct {
	Shards   int     `json:"shards"`
	ReadFrac float64 `json:"read_frac"`
	Readers  int     `json:"readers"`
	// Locked marks the DisableOptimisticReads baseline arm.
	Locked bool `json:"locked,omitempty"`
	Reads  int  `json:"reads"`
	Writes int  `json:"writes"`
	// Wall-clock view (host-dependent).
	WallNsPerRead     float64 `json:"wall_ns_per_read"`
	WallReadOpsPerSec float64 `json:"wall_read_ops_per_sec"`
	// Simulated view (machine-independent).
	SimMeanReadNS    float64 `json:"sim_mean_read_ns"`
	SimReadWorkNS    int64   `json:"sim_read_work_ns"`
	SimWriteDeltaNS  int64   `json:"sim_write_delta_ns"`
	SimElapsedNS     int64   `json:"sim_elapsed_ns"`
	SimReadOpsPerSec float64 `json:"sim_read_ops_per_sec"`
	// SimSpeedup is vs this frac+arm's first (fewest-readers) point.
	SimSpeedup float64 `json:"sim_speedup,omitempty"`
	// Read-path shape from the recorder.
	GetOptimistic int64 `json:"get_optimistic"`
	GetLocked     int64 `json:"get_locked"`
	GetRetries    int64 `json:"get_retries"`
}

// ReadParity compares single-reader simulated read latency across arms.
type ReadParity struct {
	ReadFrac        float64 `json:"read_frac"`
	OptimisticSimNS float64 `json:"optimistic_sim_mean_ns"`
	LockedSimNS     float64 `json:"locked_sim_mean_ns"`
	// RatioPct = optimistic / locked × 100 (≈100 means cost parity).
	RatioPct float64 `json:"ratio_pct"`
}

// ReadBenchReport is the JSON document emitted by -readbench.
type ReadBenchReport struct {
	Generated string           `json:"generated"`
	GoVersion string           `json:"go_version"`
	CPUs      int              `json:"cpus"`
	N         int              `json:"n"`
	PageSize  int              `json:"page_size"`
	Seed      int64            `json:"seed"`
	Shards    int              `json:"shards"`
	MaxBatch  int              `json:"max_batch"`
	Points    []ReadBenchPoint `json:"points"`
	Parity    []ReadParity     `json:"parity"`
}

func rbKey(i int) []byte { return []byte(fmt.Sprintf("rb%08d", i)) }

// runReadBenchPoint preloads n records into a fresh store and runs the
// mixed read/write phase for one parameter combination.
func runReadBenchPoint(n, pageSize int, shards, maxBatch, readers int, readFrac float64, locked bool) (ReadBenchPoint, error) {
	pt := ReadBenchPoint{Shards: shards, ReadFrac: readFrac, Readers: readers, Locked: locked}
	kv, err := fasp.OpenKV(fasp.Options{
		Scheme: "fast+", PageSize: pageSize, Shards: shards, MaxBatch: maxBatch,
		DisableOptimisticReads: locked,
	})
	if err != nil {
		return pt, err
	}
	defer kv.Close()

	val := make([]byte, 64)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	preload := make([]shard.Op, n)
	for i := 0; i < n; i++ {
		preload[i] = shard.Op{Kind: shard.OpPut, Key: rbKey(i), Val: val}
	}
	for _, err := range kv.ApplyBatch(preload) {
		if err != nil {
			return pt, fmt.Errorf("preload: %w", err)
		}
	}

	// readFrac == 1 is the internal pure-read parity mode (no writer); the
	// flag parser keeps user-supplied fractions strictly below 1.
	writes := int(float64(n) * (1 - readFrac))
	perReader := (n - writes) / readers
	reads := perReader * readers
	pt.Reads, pt.Writes = reads, writes

	simBefore := kv.EngineStats().SimMaxNS
	var firstErr atomic.Value
	var wg sync.WaitGroup
	runtime.GC()
	t0 := time.Now()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes; i++ {
			if err := kv.Put(rbKey(n+i), val); err != nil {
				firstErr.CompareAndSwap(nil, err)
				return
			}
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := uint64(r)*2654435761 + 99991
			for i := 0; i < perReader; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := rbKey(int(rng % uint64(n)))
				if _, ok, err := kv.Get(k); err != nil || !ok {
					firstErr.CompareAndSwap(nil, fmt.Errorf("get %q: ok=%v err=%v", k, ok, err))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	wall := time.Since(t0)
	if err, _ := firstErr.Load().(error); err != nil {
		return pt, err
	}

	simDelta := kv.EngineStats().SimMaxNS - simBefore
	m := kv.Metrics()
	get := m.OpStats(obsv.OpGet)
	pt.WallNsPerRead = float64(wall.Nanoseconds()) / float64(reads)
	pt.WallReadOpsPerSec = float64(reads) / wall.Seconds()
	pt.SimMeanReadNS = get.SimMeanNS
	pt.SimReadWorkNS = int64(get.SimMeanNS * float64(get.Count))
	pt.SimWriteDeltaNS = simDelta
	pt.GetOptimistic = m.GetOptimistic
	pt.GetLocked = m.GetLocked
	pt.GetRetries = m.GetRetries
	// Elapsed = max(read work spread over R readers, slowest shard's clock
	// delta). The arms differ only in what the shard clocks contain: locked
	// reads advance their shard's clock (the lock-serialisation floor rises
	// with read volume), optimistic reads are invisible to it (the floor is
	// just the write traffic).
	elapsed := pt.SimReadWorkNS / int64(readers)
	if simDelta > elapsed {
		elapsed = simDelta
	}
	pt.SimElapsedNS = elapsed
	if pt.SimElapsedNS > 0 {
		pt.SimReadOpsPerSec = float64(reads) / (float64(pt.SimElapsedNS) / 1e9)
	}
	return pt, nil
}

// runReadBench sweeps readers × readFracs (plus a locked single-reader
// baseline per frac) and writes the JSON report.
func runReadBench(outPath string, n, pageSize int, seed int64, shards, maxBatch int, readersList []int, fracs []float64) error {
	if shards <= 0 {
		shards = 8
	}
	rep := ReadBenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		N:         n,
		PageSize:  pageSize,
		Seed:      seed,
		Shards:    shards,
		MaxBatch:  maxBatch,
	}
	report := func(p ReadBenchPoint) {
		arm := "optimistic"
		if p.Locked {
			arm = "locked"
		}
		fmt.Fprintf(os.Stderr,
			"readfrac=%.2f readers=%d %-10s  wall %8.0f ns/read  sim %9.0f reads/s  speedup %5.2fx  retries=%d\n",
			p.ReadFrac, p.Readers, arm, p.WallNsPerRead, p.SimReadOpsPerSec, p.SimSpeedup, p.GetRetries)
	}
	for _, frac := range fracs {
		var optBase, lockBase ReadBenchPoint
		for _, locked := range []bool{false, true} {
			for i, r := range readersList {
				pt, err := runReadBenchPoint(n, pageSize, shards, maxBatch, r, frac, locked)
				if err != nil {
					return err
				}
				if i == 0 {
					if locked {
						lockBase = pt
					} else {
						optBase = pt
					}
					pt.SimSpeedup = 1
				} else if pt.SimElapsedNS > 0 {
					base := optBase
					if locked {
						base = lockBase
					}
					pt.SimSpeedup = float64(base.SimElapsedNS) / float64(pt.SimElapsedNS)
				}
				report(pt)
				rep.Points = append(rep.Points, pt)
			}
		}
		fmt.Fprintf(os.Stderr, "readfrac=%.2f single-reader mixed sim latency: optimistic %.0f ns vs locked %.0f ns\n",
			frac, optBase.SimMeanReadNS, lockBase.SimMeanReadNS)
	}
	// Canonical latency-parity check: a lone reader over a quiescent store,
	// so neither lock contention nor writer-driven cache churn skews the
	// per-read cost comparison.
	po, err := runReadBenchPoint(n, pageSize, shards, maxBatch, 1, 1.0, false)
	if err != nil {
		return err
	}
	pl, err := runReadBenchPoint(n, pageSize, shards, maxBatch, 1, 1.0, true)
	if err != nil {
		return err
	}
	par := ReadParity{ReadFrac: 1, OptimisticSimNS: po.SimMeanReadNS, LockedSimNS: pl.SimMeanReadNS}
	if pl.SimMeanReadNS > 0 {
		par.RatioPct = po.SimMeanReadNS / pl.SimMeanReadNS * 100
	}
	fmt.Fprintf(os.Stderr, "single-reader pure-read sim latency: optimistic %.0f ns vs locked %.0f ns (%.1f%%)\n",
		par.OptimisticSimNS, par.LockedSimNS, par.RatioPct)
	rep.Parity = append(rep.Parity, par)
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}

func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad list entry %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || v <= 0 || v >= 1 {
			return nil, fmt.Errorf("bad fraction %q (need 0 < f < 1)", f)
		}
		out = append(out, v)
	}
	return out, nil
}
