package main

// Chaos soak mode (-chaos): runs the fault-injection harness
// (internal/server.RunChaos) — a faspserver under a seeded storm of
// connection kills, torn writes, stalls, injected shard-writer panics,
// and whole-server crash-restarts, driven by retrying loadgen clients —
// then audits the acked-prefix oracle after a final crash recovery. The
// report (JSON) carries the replayable faultx spec; re-run any failure
// with -chaos-spec "<spec>".

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"fasp/internal/faultx"
	"fasp/internal/server"
)

type chaosBenchConfig struct {
	out    string
	spec   string
	dur    time.Duration
	conns  int
	shards int
}

func runChaosBench(cfg chaosBenchConfig) error {
	sp, err := faultx.ParseSpec(cfg.spec)
	if err != nil {
		return err
	}
	rep, chaosErr := server.RunChaos(server.ChaosConfig{
		Spec:     sp,
		Shards:   cfg.shards,
		Duration: cfg.dur,
		Conns:    cfg.conns,
	})

	out := os.Stdout
	if cfg.out != "-" && cfg.out != "" {
		f, err := os.Create(cfg.out)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}

	if chaosErr != nil {
		return fmt.Errorf("soak FAILED — replay with -chaos-spec %q: %w", rep.Spec, chaosErr)
	}
	fmt.Fprintf(os.Stderr,
		"faspbench: chaos OK: %d acked writes verified through %d kills, %d torn writes, %d stalls, %d shard panics (healed %d/%d), %d restarts, %d reconnects (spec %s)\n",
		rep.AckedWrites, rep.Faults.Kills, rep.Faults.Torn, rep.Faults.Stalls,
		rep.Faults.Panics, rep.HealAttempts-rep.HealFailures, rep.HealAttempts,
		rep.Restarts, rep.Loadgen.Reconnects, rep.Spec)
	return nil
}
