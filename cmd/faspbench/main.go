// Command faspbench regenerates the paper's evaluation: one table per
// figure (6–12) plus the ablation studies. Times are simulated nanoseconds
// from the PM emulator, so results are machine-independent and
// deterministic for a given seed.
//
// Usage:
//
//	faspbench -fig 6            # one figure
//	faspbench -all              # figures 6..12
//	faspbench -ablations        # the three ablation tables
//	faspbench -all -n 100000    # paper-scale transaction counts
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fasp/internal/experiment"
)

// defaultShards maps the shared -shards flag (0 = unset) to a
// mode-specific default partition count.
func defaultShards(n, def int) int {
	if n <= 0 {
		return def
	}
	return n
}

func main() {
	var (
		fig        = flag.Int("fig", 0, "figure to reproduce (6..12)")
		all        = flag.Bool("all", false, "run every figure")
		ablations  = flag.Bool("ablations", false, "run the ablation studies")
		recovery   = flag.Bool("recovery", false, "run the recovery-time experiment")
		n          = flag.Int("n", 10000, "transactions per data point (paper: 100000)")
		pageSize   = flag.Int("pagesize", 4096, "database page size in bytes")
		seed       = flag.Int64("seed", 42, "workload seed")
		benchJSON  = flag.String("benchjson", "", "write wall-clock insert/search benchmark JSON to this file ('-' = stdout)")
		baseline   = flag.String("baseline", "", "previous -benchjson report to embed for comparison")
		shards     = flag.Int("shards", 0, "with -benchjson: also benchmark a sharded KV with this many shards (vs a shards=1 baseline)")
		clients    = flag.Int("clients", 1, "with -shards: concurrent client goroutines")
		maxBatch   = flag.Int("maxbatch", 0, "with -shards: group-commit drain bound (0 = default)")
		mAddr      = flag.String("metrics-addr", "", "with -shards: serve /metrics on this address during the sharded run (e.g. 127.0.0.1:0)")
		scrape     = flag.Bool("scrape", false, "with -metrics-addr: self-scrape /metrics once and validate the Prometheus text (CI smoke)")
		readbench  = flag.String("readbench", "", "write the read-scaling benchmark JSON to this file ('-' = stdout)")
		phasebench = flag.String("phasebench", "", "write the adaptive-vs-pinned phase benchmark JSON to this file ('-' = stdout)")
		readfrac   = flag.String("readfrac", "0.5,0.95", "with -readbench: comma list of read fractions of the mixed workload")
		readers    = flag.String("readers", "1,2,4,8", "with -readbench: comma list of reader goroutine counts to sweep")

		serverbench = flag.String("serverbench", "", "write the network-server benchmark JSON to this file ('-' = stdout)")
		sbConns     = flag.Int("sb-conns", 256, "with -serverbench: connections in the many-client arm")
		sbDur       = flag.Duration("sb-dur", 2*time.Second, "with -serverbench: load duration per arm")
		sbValue     = flag.Int("sb-value", 64, "with -serverbench: PUT value size in bytes")
		sbBatch     = flag.Int("sb-batch", 1, "with -serverbench: ops per BATCH request (1 = single PUTs)")
		sbPipeline  = flag.Int("sb-pipeline", 4, "with -serverbench: pipelined requests per connection")
		sbScheme    = flag.String("sb-scheme", "", "with -serverbench: commit scheme (default fast+)")
		sbOverInfl  = flag.Int("sb-over-inflight", 4, "with -serverbench: MaxInFlight of the overload arm")
		sbStrict    = flag.Bool("sb-strict", false, "with -serverbench: exit non-zero if acceptance targets are missed")

		chaos      = flag.String("chaos", "", "write the chaos-soak report JSON to this file ('-' = stdout); non-zero exit on an oracle violation")
		chaosSpec  = flag.String("chaos-spec", "fx:1:42:0.03:0.02:0.005:2:0.004:2", "with -chaos: replayable faultx fault schedule")
		chaosDur   = flag.Duration("chaos-dur", 3*time.Second, "with -chaos: soak duration")
		chaosConns = flag.Int("chaos-conns", 12, "with -chaos: retrying client connections")
	)
	flag.Parse()

	if *chaos != "" {
		err := runChaosBench(chaosBenchConfig{
			out: *chaos, spec: *chaosSpec, dur: *chaosDur,
			conns: *chaosConns, shards: defaultShards(*shards, 8),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: chaos: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *serverbench != "" {
		err := runServerBench(serverBenchConfig{
			out: *serverbench, conns: *sbConns, dur: *sbDur, valueSize: *sbValue,
			batchSize: *sbBatch, pipeline: *sbPipeline, overInflit: *sbOverInfl,
			// Serverbench defaults to 16 partitions: the pipelined-vs-global
			// A/B needs enough shards that the global batcher's per-round
			// all-shards barrier binds (at 8 the width amortisation alone
			// nearly cancels it).
			shards: defaultShards(*shards, 16), scheme: *sbScheme, pageSize: *pageSize, maxBatch: *maxBatch, seed: *seed,
			metricsAddr: *mAddr, scrape: *scrape, strict: *sbStrict,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: serverbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *phasebench != "" {
		if err := runPhaseBench(*phasebench, *n, *pageSize, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: phasebench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *readbench != "" {
		rl, err := parseIntList(*readers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: -readers: %v\n", err)
			os.Exit(2)
		}
		fl, err := parseFloatList(*readfrac)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: -readfrac: %v\n", err)
			os.Exit(2)
		}
		if err := runReadBench(*readbench, *n, *pageSize, *seed, *shards, *maxBatch, rl, fl); err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: readbench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *baseline, *n, *pageSize, *seed, *shards, *clients, *maxBatch, *mAddr, *scrape); err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}

	p := experiment.Params{N: *n, PageSize: *pageSize, Seed: *seed}
	figs := map[int]func() error{
		6: func() error {
			rows, err := experiment.RunFig6(p)
			if err != nil {
				return err
			}
			experiment.PrintFig6(rows, os.Stdout)
			return nil
		},
		7: func() error {
			rows, err := experiment.RunFig7(p)
			if err != nil {
				return err
			}
			experiment.PrintFig7(rows, os.Stdout)
			return nil
		},
		8: func() error {
			rows, err := experiment.RunFig8(p)
			if err != nil {
				return err
			}
			experiment.PrintFig8(rows, os.Stdout)
			return nil
		},
		9: func() error {
			rows, err := experiment.RunFig9(p)
			if err != nil {
				return err
			}
			experiment.PrintFig9(rows, os.Stdout)
			return nil
		},
		10: func() error {
			rows, err := experiment.RunFig10(p)
			if err != nil {
				return err
			}
			experiment.PrintFig10(rows, os.Stdout)
			return nil
		},
		11: func() error {
			rows, err := experiment.RunFig11(p)
			if err != nil {
				return err
			}
			experiment.PrintFig11(rows, os.Stdout)
			return nil
		},
		12: func() error {
			rows, err := experiment.RunFig12(p)
			if err != nil {
				return err
			}
			experiment.PrintFig12(rows, os.Stdout)
			return nil
		},
	}

	run := func(id int) {
		fmt.Println()
		if err := figs[id](); err != nil {
			fmt.Fprintf(os.Stderr, "faspbench: figure %d: %v\n", id, err)
			os.Exit(1)
		}
	}

	switch {
	case *all:
		for id := 6; id <= 12; id++ {
			run(id)
		}
		if *ablations {
			runAblations(p)
		}
		if *recovery {
			runRecovery(p)
		}
	case *ablations:
		runAblations(p)
		if *recovery {
			runRecovery(p)
		}
	case *recovery:
		runRecovery(p)
	case *fig != 0:
		if _, ok := figs[*fig]; !ok {
			fmt.Fprintf(os.Stderr, "faspbench: no figure %d (have 6..12)\n", *fig)
			os.Exit(2)
		}
		run(*fig)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runRecovery(p experiment.Params) {
	fmt.Println()
	rows, err := experiment.RunRecovery(p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faspbench: recovery: %v\n", err)
		os.Exit(1)
	}
	experiment.PrintRecovery(rows, os.Stdout)
}

func runAblations(p experiment.Params) {
	fmt.Println()
	if rows, err := experiment.RunAblationSchemes(p); err == nil {
		experiment.PrintAblationSchemes(rows, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "faspbench: ablation schemes: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	if rows, err := experiment.RunAblationPageSize(p); err == nil {
		experiment.PrintAblationPageSize(rows, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "faspbench: ablation page size: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	if rows, err := experiment.RunAblationHTMAborts(p); err == nil {
		experiment.PrintAblationHTMAborts(rows, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "faspbench: ablation HTM: %v\n", err)
		os.Exit(1)
	}
	fmt.Println()
	if rows, err := experiment.RunWriteAmplification(p); err == nil {
		experiment.PrintWriteAmplification(rows, os.Stdout)
	} else {
		fmt.Fprintf(os.Stderr, "faspbench: write amplification: %v\n", err)
		os.Exit(1)
	}
}
