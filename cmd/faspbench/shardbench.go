package main

// Sharded wall-clock benchmark (-shards/-clients with -benchjson): measures
// the sharded KV engine end-to-end through the public facade — concurrent
// client goroutines issuing Put through each shard's mailbox, group commit
// amortising the commit protocol per shard.
//
// Two throughput views are reported. Wall-clock ops/s measures how fast the
// emulation runs on the host, which on a single-CPU machine cannot benefit
// from shard parallelism (the per-op cost is dominated by the emulator's
// bookkeeping, and N shards still execute on one core). Simulated ops/s
// divides the op count by the *slowest shard's* simulated time — the
// elapsed time of the simulated machine cluster, where shards genuinely
// run in parallel — and is the machine-independent number the sharding
// design targets. The report records the host CPU count so readers can
// interpret the wall-clock column.

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fasp"
	"fasp/internal/obsv"
	"fasp/internal/workload"
)

// ShardBenchResult is one (shards, clients) insert run.
type ShardBenchResult struct {
	Shards   int `json:"shards"`
	Clients  int `json:"clients"`
	MaxBatch int `json:"max_batch"`
	N        int `json:"n"`
	// Wall-clock view (host-dependent).
	InsertNsOp    float64 `json:"insert_ns_op"`
	WallOpsPerSec float64 `json:"wall_ops_per_sec"`
	// Simulated view (machine-independent): elapsed = slowest shard.
	SimElapsedNS int64   `json:"sim_elapsed_ns"`
	SimSumNS     int64   `json:"sim_sum_ns"`
	SimOpsPerSec float64 `json:"sim_ops_per_sec"`
	// Group-commit effectiveness.
	Batches    int64   `json:"batches"`
	AvgBatch   float64 `json:"avg_batch"`
	MaxDrained int     `json:"max_drained"`
	// ShardOps shows routing balance (ops applied per shard).
	ShardOps []int64 `json:"shard_ops,omitempty"`
	// Put holds the client-perceived latency distribution (wall includes
	// mailbox queueing; sim is the per-op share of the group commit).
	Put LatencyQuantiles `json:"put_latency"`
	// Batch-size distribution quantiles (group-commit effectiveness).
	BatchP50 int64 `json:"batch_p50,omitempty"`
	BatchP99 int64 `json:"batch_p99,omitempty"`
	// Speedups vs the shards=1 row of the same series.
	WallSpeedup float64 `json:"wall_speedup,omitempty"`
	SimSpeedup  float64 `json:"sim_speedup,omitempty"`
}

// runBenchSharded inserts n pre-generated records through `clients`
// concurrent goroutines into a store with the given shard count. When
// exporter is non-empty the run serves /metrics on that address while the
// store is live; with scrape it also self-scrapes once and validates the
// Prometheus text (the CI smoke path).
func runBenchSharded(n, pageSize int, seed int64, shards, clients, maxBatch int, exporter string, scrape bool) (ShardBenchResult, error) {
	res := ShardBenchResult{Shards: shards, Clients: clients, MaxBatch: maxBatch}
	kv, err := fasp.OpenKV(fasp.Options{
		Scheme: "fast+", PageSize: pageSize, Shards: shards, MaxBatch: maxBatch,
	})
	if err != nil {
		return res, err
	}
	defer kv.Close()
	res.MaxBatch = kv.MaxBatch()

	gen := workload.New(workload.Config{Seed: seed, RecordSize: 64})
	per := n / clients
	n = per * clients // exact split keeps client loops identical
	res.N = n
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = gen.NextKey()
		vals[i] = gen.NextValue()
	}

	var firstErr atomic.Value
	var wg sync.WaitGroup
	runtime.GC()
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c * per; i < (c+1)*per; i++ {
				if err := kv.Put(keys[i], vals[i]); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)
	if err, _ := firstErr.Load().(error); err != nil {
		return res, err
	}

	st := kv.EngineStats()
	res.InsertNsOp = float64(wall.Nanoseconds()) / float64(n)
	res.WallOpsPerSec = float64(n) / wall.Seconds()
	res.SimElapsedNS = st.SimMaxNS
	res.SimSumNS = st.SimSumNS
	if st.SimMaxNS > 0 {
		res.SimOpsPerSec = float64(n) / (float64(st.SimMaxNS) / 1e9)
	}
	res.Batches = st.Batches
	if st.Batches > 0 {
		res.AvgBatch = float64(st.Ops) / float64(st.Batches)
	}
	res.MaxDrained = st.MaxDrained
	if kv.Sharded() {
		for i := 0; i < kv.Shards(); i++ {
			in, err := kv.ShardStats(i)
			if err != nil {
				return res, err
			}
			res.ShardOps = append(res.ShardOps, in.Ops)
		}
	}
	m := kv.Metrics()
	if o := m.OpStats(obsv.OpPut); o.Count > 0 {
		res.Put = LatencyQuantiles{
			WallP50NS: o.WallP50NS, WallP95NS: o.WallP95NS, WallP99NS: o.WallP99NS,
			SimP50NS: o.SimP50NS, SimP95NS: o.SimP95NS, SimP99NS: o.SimP99NS,
		}
	}
	if m.BatchSize.Count > 0 {
		res.BatchP50 = m.BatchSize.Quantile(0.50)
		res.BatchP99 = m.BatchSize.Quantile(0.99)
	}
	if exporter != "" {
		if err := serveAndScrape(kv, exporter, scrape); err != nil {
			return res, err
		}
	}
	return res, nil
}

// serveAndScrape starts the metrics exporter while kv is still open and
// registered, optionally fetches /metrics once, and validates that the
// response parses as Prometheus text exposition and carries the per-shard
// series the sharded engine is expected to export.
func serveAndScrape(kv *fasp.KV, addr string, scrape bool) error {
	srv, err := fasp.ServeMetrics(addr)
	if err != nil {
		return fmt.Errorf("metrics exporter: %w", err)
	}
	defer srv.Close()
	fmt.Fprintf(os.Stderr, "metrics exporter listening on http://%s/metrics\n", srv.Addr())
	if !scrape {
		return nil
	}
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape: status %d", resp.StatusCode)
	}
	if err := obsv.ValidatePrometheus(body); err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	for _, want := range []string{"fasp_shard_ops_total", "fasp_batch_size_bucket", "fasp_ops_total"} {
		if !strings.Contains(string(body), want) {
			return fmt.Errorf("scrape: series %q missing from /metrics", want)
		}
	}
	fmt.Fprintf(os.Stderr, "scrape ok: %d bytes of valid Prometheus text\n", len(body))
	return nil
}

// runShardSeries benchmarks shards=1 as the baseline and then the requested
// shard count, annotating speedups. The exporter (and self-scrape) attaches
// to the run with the requested shard count, falling back to the baseline
// when shards == 1, so the scraped page always shows the interesting store.
func runShardSeries(n, pageSize int, seed int64, shards, clients, maxBatch int, exporter string, scrape bool) ([]ShardBenchResult, error) {
	var out []ShardBenchResult
	baseExporter := ""
	if shards <= 1 {
		baseExporter = exporter
	}
	base, err := runBenchSharded(n, pageSize, seed, 1, clients, maxBatch, baseExporter, scrape && shards <= 1)
	if err != nil {
		return nil, err
	}
	report := func(r ShardBenchResult) {
		fmt.Fprintf(os.Stderr,
			"shards=%-2d clients=%-2d insert %8.0f ns/op  wall %9.0f ops/s  sim %9.0f ops/s  avg batch %.1f  put p99 %dns\n",
			r.Shards, r.Clients, r.InsertNsOp, r.WallOpsPerSec, r.SimOpsPerSec, r.AvgBatch, r.Put.WallP99NS)
	}
	report(base)
	out = append(out, base)
	if shards > 1 {
		r, err := runBenchSharded(n, pageSize, seed, shards, clients, maxBatch, exporter, scrape)
		if err != nil {
			return nil, err
		}
		if base.WallOpsPerSec > 0 {
			r.WallSpeedup = r.WallOpsPerSec / base.WallOpsPerSec
		}
		if base.SimOpsPerSec > 0 {
			r.SimSpeedup = r.SimOpsPerSec / base.SimOpsPerSec
		}
		report(r)
		fmt.Fprintf(os.Stderr, "speedup vs shards=1: wall %.2fx, simulated %.2fx (host has %d CPU(s))\n",
			r.WallSpeedup, r.SimSpeedup, runtime.NumCPU())
		out = append(out, r)
	}
	return out, nil
}
