package main

// Phase benchmark (-phasebench): drives one fixed three-phase workload —
// insert-heavy, update-heavy, scan-heavy with a light write trickle —
// through five arms: the adaptive controller starting from fast+
// ("adaptive"), the adaptive controller starting from a deliberately wrong
// pin ("adaptive-cold", wal start), and the three pinned schemes the
// controller chooses between. Everything runs on the deterministic
// ApplyBatch path of a Shards>1 store, so per-phase simulated time is a
// pure function of the op sequence and the report is byte-reproducible.
//
// Two numbers matter in the summary. First, the "adaptive" arm must track
// the best pinned scheme per phase — the controller's decisions have to
// match the emulator's real cost ordering, and its bookkeeping (window
// accounting, fragmentation scans, defrag passes) must cost ~nothing.
// Second, the gap to the worst pinned arm is the price of pinning the
// wrong scheme for the workload; the adaptive-cold arm shows the
// controller erasing most of that price at runtime by migrating away from
// the bad pin after two decision windows.

import (
	"encoding/json"
	"fmt"
	"os"

	"fasp"
	"fasp/internal/obsv"
)

// PhasePoint is one arm × phase measurement.
type PhasePoint struct {
	Phase string `json:"phase"`
	Ops   int    `json:"ops"`
	Scans int    `json:"scans,omitempty"`
	// WriteSimNS is the slowest shard's simulated-time advance across the
	// phase's mutations (group commits, migrations, defrag passes).
	WriteSimNS int64 `json:"write_sim_ns"`
	// ScanSimNS is the simulated read work the phase's scans performed.
	ScanSimNS int64 `json:"scan_sim_ns"`
	// SimNS = WriteSimNS + ScanSimNS, the phase's total simulated cost.
	SimNS   int64   `json:"sim_ns"`
	SimNsOp float64 `json:"sim_ns_op"`
	// Schemes is the adaptive arm's live per-shard scheme at phase end.
	Schemes []string `json:"schemes,omitempty"`
}

// PhaseArm is one arm's full run.
type PhaseArm struct {
	Arm        string       `json:"arm"`
	Adaptive   bool         `json:"adaptive,omitempty"`
	Phases     []PhasePoint `json:"phases"`
	TotalSimNS int64        `json:"total_sim_ns"`
}

// PhaseSummary compares the adaptive arm against the pinned ones.
type PhaseSummary struct {
	// BestArm / WorstArm name the pinned scheme with the lowest / highest
	// total simulated cost.
	BestArm  string `json:"best_pinned_arm"`
	WorstArm string `json:"worst_pinned_arm"`
	// AdaptiveVsBestPct is, per phase, the adaptive arm's simulated cost
	// relative to the best pinned arm for that phase (100 = parity, < 100 =
	// adaptive faster).
	AdaptiveVsBestPct map[string]float64 `json:"adaptive_vs_best_pct"`
	// AdaptiveVsBestTotalPct / AdaptiveVsWorstTotalPct are the same ratio
	// over the whole workload against the best / worst pinned totals.
	AdaptiveVsBestTotalPct  float64 `json:"adaptive_vs_best_total_pct"`
	AdaptiveVsWorstTotalPct float64 `json:"adaptive_vs_worst_total_pct"`
}

// PhaseBenchReport is the -phasebench JSON document (BENCH_PR6.json).
type PhaseBenchReport struct {
	N        int          `json:"n"`
	PageSize int          `json:"page_size"`
	Seed     int64        `json:"seed"`
	Shards   int          `json:"shards"`
	MaxBatch int          `json:"max_batch"`
	Arms     []PhaseArm   `json:"arms"`
	Summary  PhaseSummary `json:"summary"`
}

const (
	pbShards   = 2
	pbMaxBatch = 8
)

// pbKey/pbVal generate the shared deterministic key/value space.
func pbKey(i int) []byte { return []byte(fmt.Sprintf("p%07d", i)) }
func pbVal(i int) []byte {
	return []byte(fmt.Sprintf("phase-value-%07d-%048d", i, i))
}

// phaseWorkload drives the three phases against kv, measuring each.
// Call counts scale with n (ops per phase, roughly) but never drop below
// the floor the adaptive controller needs to close enough decision windows
// to migrate (32-sample windows, hysteresis 2, cooldown 2).
func phaseWorkload(kv *fasp.KV, n int, adaptive bool) ([]PhasePoint, error) {
	scale := n / 10000
	if scale < 1 {
		scale = 1
	}
	apply := func(ops []fasp.Op) error {
		for i, err := range kv.ApplyBatch(ops) {
			if err != nil {
				return fmt.Errorf("op %d (%s): %w", i, ops[i].Kind, err)
			}
		}
		return nil
	}
	var out []PhasePoint
	simBase := kv.EngineStats().SimMaxNS
	scanBase := int64(0)
	scanWork := func() int64 {
		s := kv.Metrics().OpStats(obsv.OpScan)
		return int64(s.SimMeanNS * float64(s.Count))
	}
	closePhase := func(name string, ops, scans int) {
		pt := PhasePoint{Phase: name, Ops: ops, Scans: scans}
		sim := kv.EngineStats().SimMaxNS
		sw := scanWork()
		pt.WriteSimNS = sim - simBase
		pt.ScanSimNS = sw - scanBase
		pt.SimNS = pt.WriteSimNS + pt.ScanSimNS
		if ops+scans > 0 {
			pt.SimNsOp = float64(pt.SimNS) / float64(ops+scans)
		}
		simBase, scanBase = sim, sw
		if adaptive {
			for i := 0; i < kv.Shards(); i++ {
				s, _ := kv.ShardScheme(i)
				pt.Schemes = append(pt.Schemes, s)
			}
		}
		out = append(out, pt)
	}

	// Phase 1 — insert-heavy: sequential 8-op calls (≈4 ops per shard per
	// group commit, mostly single-leaf write sets). Long enough that the
	// cold-start arm's two decision windows plus migration amortise.
	insertCalls := 420 * scale
	id := 0
	for c := 0; c < insertCalls; c++ {
		ops := make([]fasp.Op, 8)
		for j := range ops {
			ops[j] = fasp.Op{Kind: fasp.OpInsert, Key: pbKey(id), Val: pbVal(id)}
			id++
		}
		if err := apply(ops); err != nil {
			return nil, err
		}
	}
	total := id
	closePhase("insert-heavy", insertCalls*8, 0)

	// Phase 2 — update-heavy: two-op calls scattered across the key space,
	// every per-shard commit a single-leaf transaction.
	updateCalls := 600 * scale
	for c := 0; c < updateCalls; c++ {
		if err := apply([]fasp.Op{
			{Kind: fasp.OpUpdate, Key: pbKey((c * 997) % total), Val: pbVal(c + total)},
			{Kind: fasp.OpUpdate, Key: pbKey((c*997 + total/2) % total), Val: pbVal(c + 2*total)},
		}); err != nil {
			return nil, err
		}
	}
	closePhase("update-heavy", updateCalls*2, 0)

	// Phase 3 — scan-heavy: full-range scans with a light single-leaf write
	// trickle (the trickle keeps decision windows closing).
	scanCalls := 40 * scale
	trickle := 240 * scale
	si := 0
	for c := 0; c < trickle; c++ {
		if err := apply([]fasp.Op{
			{Kind: fasp.OpUpdate, Key: pbKey((c * 31) % total), Val: pbVal(c + 3*total)},
		}); err != nil {
			return nil, err
		}
		if c%6 == 0 && si < scanCalls {
			si++
			if err := kv.Scan(nil, nil, func(k, v []byte) bool { return true }); err != nil {
				return nil, err
			}
		}
	}
	closePhase("scan-heavy", trickle, si)
	return out, nil
}

// runPhaseArm opens one arm's store and runs the workload through it.
// start is the scheme the store opens under; adaptive arms may migrate
// away from it.
func runPhaseArm(arm, start string, n, pageSize int, adaptive bool) (PhaseArm, error) {
	res := PhaseArm{Arm: arm, Adaptive: adaptive}
	opts := fasp.Options{
		Scheme:   start,
		Shards:   pbShards,
		MaxBatch: pbMaxBatch,
		PageSize: pageSize,
	}
	if adaptive {
		opts.AdaptiveScheme = true
		opts.AdaptiveBatch = true
		// Proactive defrag breaks even at best on the deterministic
		// ApplyBatch path (there are no idle slots to hide the rewrites
		// in), so arm it only against heavy fragmentation this workload
		// does not reach; the defrag loop's effect is pinned by the
		// adaptive golden instead.
		opts.DefragThreshold = 0.45
	}
	kv, err := fasp.OpenKV(opts)
	if err != nil {
		return res, err
	}
	defer kv.Close()
	pts, err := phaseWorkload(kv, n, adaptive)
	if err != nil {
		return res, err
	}
	res.Phases = pts
	for _, p := range pts {
		res.TotalSimNS += p.SimNS
	}
	return res, nil
}

// runPhaseBench runs all four arms and writes the report.
func runPhaseBench(path string, n, pageSize int, seed int64) error {
	arms := []struct {
		name     string
		start    string
		adaptive bool
	}{
		{"adaptive", "fast+", true},
		{"adaptive-cold", "wal", true},
		{"fast+", "fast+", false},
		{"fast", "fast", false},
		{"wal", "wal", false},
	}
	rep := PhaseBenchReport{
		N: n, PageSize: pageSize, Seed: seed,
		Shards: pbShards, MaxBatch: pbMaxBatch,
	}
	for _, a := range arms {
		r, err := runPhaseArm(a.name, a.start, n, pageSize, a.adaptive)
		if err != nil {
			return fmt.Errorf("arm %s: %w", a.name, err)
		}
		for _, p := range r.Phases {
			extra := ""
			if len(p.Schemes) > 0 {
				extra = fmt.Sprintf("  schemes %v", p.Schemes)
			}
			fmt.Fprintf(os.Stderr, "%-9s %-13s %6d ops  sim %12d ns  %8.0f ns/op%s\n",
				a.name, p.Phase, p.Ops+p.Scans, p.SimNS, p.SimNsOp, extra)
		}
		fmt.Fprintf(os.Stderr, "%-9s total          sim %12d ns\n", a.name, r.TotalSimNS)
		rep.Arms = append(rep.Arms, r)
	}

	rep.Summary = summarizePhases(rep.Arms)
	fmt.Fprintf(os.Stderr,
		"summary: best pinned %s, worst pinned %s; adaptive = %.1f%% of best total, %.1f%% of worst total\n",
		rep.Summary.BestArm, rep.Summary.WorstArm,
		rep.Summary.AdaptiveVsBestTotalPct, rep.Summary.AdaptiveVsWorstTotalPct)
	for _, ph := range []string{"insert-heavy", "update-heavy", "scan-heavy"} {
		fmt.Fprintf(os.Stderr, "summary: %-13s adaptive = %.1f%% of best pinned\n",
			ph, rep.Summary.AdaptiveVsBestPct[ph])
	}

	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(path, out, 0o644)
}

// summarizePhases computes the adaptive-vs-pinned comparison.
func summarizePhases(arms []PhaseArm) PhaseSummary {
	s := PhaseSummary{AdaptiveVsBestPct: map[string]float64{}}
	var adaptive *PhaseArm
	var pinned []*PhaseArm
	for i := range arms {
		switch {
		case arms[i].Arm == "adaptive":
			adaptive = &arms[i]
		case !arms[i].Adaptive:
			pinned = append(pinned, &arms[i])
		}
	}
	if adaptive == nil || len(pinned) == 0 {
		return s
	}
	var best, worst *PhaseArm
	for _, p := range pinned {
		if best == nil || p.TotalSimNS < best.TotalSimNS {
			best = p
		}
		if worst == nil || p.TotalSimNS > worst.TotalSimNS {
			worst = p
		}
	}
	s.BestArm, s.WorstArm = best.Arm, worst.Arm
	if best.TotalSimNS > 0 {
		s.AdaptiveVsBestTotalPct = 100 * float64(adaptive.TotalSimNS) / float64(best.TotalSimNS)
	}
	if worst.TotalSimNS > 0 {
		s.AdaptiveVsWorstTotalPct = 100 * float64(adaptive.TotalSimNS) / float64(worst.TotalSimNS)
	}
	for pi, ap := range adaptive.Phases {
		var bestPhase int64
		for _, p := range pinned {
			if pi < len(p.Phases) && (bestPhase == 0 || p.Phases[pi].SimNS < bestPhase) {
				bestPhase = p.Phases[pi].SimNS
			}
		}
		if bestPhase > 0 {
			s.AdaptiveVsBestPct[ap.Phase] = 100 * float64(ap.SimNS) / float64(bestPhase)
		}
	}
	return s
}
