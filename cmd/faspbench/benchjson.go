package main

// Wall-clock benchmark mode (-benchjson): unlike the figure tables, which
// report *simulated* nanoseconds, this mode measures how fast the emulation
// itself runs on the host — Go wall-clock ns/op and heap allocs/op for
// insert and search at a fixed transaction count across all five schemes.
// The output is a JSON trajectory file (BENCH_PR1.json et seq.) that later
// PRs regress against.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fasp/internal/experiment"
	"fasp/internal/obsv"
	"fasp/internal/pmem"
	"fasp/internal/workload"
)

// LatencyQuantiles summarises one op's latency distribution (histogram
// percentiles, in nanoseconds). Wall quantiles are host-dependent; sim
// quantiles are machine-independent.
type LatencyQuantiles struct {
	WallP50NS int64 `json:"wall_p50_ns"`
	WallP95NS int64 `json:"wall_p95_ns"`
	WallP99NS int64 `json:"wall_p99_ns"`
	SimP50NS  int64 `json:"sim_p50_ns"`
	SimP95NS  int64 `json:"sim_p95_ns"`
	SimP99NS  int64 `json:"sim_p99_ns"`
}

// quantilesOf reduces a pair of histogram snapshots to the report fields.
func quantilesOf(wall, sim obsv.HistSnapshot) LatencyQuantiles {
	return LatencyQuantiles{
		WallP50NS: wall.Quantile(0.50), WallP95NS: wall.Quantile(0.95), WallP99NS: wall.Quantile(0.99),
		SimP50NS: sim.Quantile(0.50), SimP95NS: sim.Quantile(0.95), SimP99NS: sim.Quantile(0.99),
	}
}

// BenchSchemeResult is one scheme's wall-clock measurements.
type BenchSchemeResult struct {
	Scheme         string  `json:"scheme"`
	InsertNsOp     float64 `json:"insert_ns_op"`
	InsertAllocsOp float64 `json:"insert_allocs_op"`
	InsertSimUsTxn float64 `json:"insert_sim_us_txn"`
	SearchNsOp     float64 `json:"search_ns_op"`
	SearchAllocsOp float64 `json:"search_allocs_op"`
	SearchSimUsOp  float64 `json:"search_sim_us_op"`
	// Latency distributions (per-op histograms, not just means).
	Insert LatencyQuantiles `json:"insert_latency"`
	Search LatencyQuantiles `json:"search_latency"`
	// Commit-path cost per insert transaction.
	FlushPerTxn float64 `json:"flush_per_txn"`
	FencePerTxn float64 `json:"fence_per_txn"`
}

// BenchReport is the JSON document emitted by -benchjson.
type BenchReport struct {
	Generated string              `json:"generated"`
	GoVersion string              `json:"go_version"`
	CPUs      int                 `json:"cpus"`
	N         int                 `json:"n"`
	PageSize  int                 `json:"page_size"`
	Seed      int64               `json:"seed"`
	Schemes   []BenchSchemeResult `json:"schemes"`
	// Sharded holds the -shards series: a shards=1 baseline followed by the
	// requested shard count, with wall-clock and simulated-parallel
	// throughput (see shardbench.go on interpreting the two on small hosts).
	Sharded []ShardBenchResult `json:"sharded,omitempty"`
	// Baseline optionally embeds the previous trajectory point (e.g. the
	// pre-optimisation numbers) for side-by-side comparison.
	Baseline *BenchReport `json:"baseline,omitempty"`
}

// runBenchScheme measures one scheme: n single-insert transactions, then n
// point lookups over the inserted keys. Keys and values are pre-generated so
// the workload generator stays out of the measured region.
func runBenchScheme(s experiment.Scheme, n, pageSize int, seed int64) (BenchSchemeResult, error) {
	p := experiment.Params{N: n, PageSize: pageSize, Seed: seed}
	e := experiment.NewEnv(s, pmem.DefaultLatencies(300, 300), p)
	gen := workload.New(workload.Config{Seed: seed, RecordSize: 64})
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = gen.NextKey()
		vals[i] = gen.NextValue()
	}

	res := BenchSchemeResult{Scheme: s.String()}
	var ms0, ms1 runtime.MemStats
	// Per-op latencies go into log-bucketed histograms. Recording is
	// allocation-free (two clock reads + atomic adds per op), so the
	// allocs/op trajectory is unaffected; the ~tens-of-ns recording cost is
	// inside the measured region and applies equally to every scheme.
	rec := obsv.New(obsv.Config{SampleEvery: 1 << 62}) // histograms only, no trace capture

	runtime.GC()
	runtime.ReadMemStats(&ms0)
	flush0, fence0 := e.PM.Stats().FlushCalls, e.Sys.Fences()
	sim0 := e.Sys.Clock().Now()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		ow, osim := time.Now(), e.Sys.Clock().Now()
		if err := e.Tree.Insert(keys[i], vals[i]); err != nil {
			return res, fmt.Errorf("%s insert %d: %w", s, i, err)
		}
		rec.ObserveWall(obsv.OpInsert, 0, time.Since(ow).Nanoseconds())
		rec.ObserveSim(obsv.OpInsert, e.Sys.Clock().Now()-osim)
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	res.InsertNsOp = float64(wall.Nanoseconds()) / float64(n)
	res.InsertAllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	res.InsertSimUsTxn = float64(e.Sys.Clock().Now()-sim0) / float64(n) / 1000
	res.Insert = quantilesOf(rec.WallHist(obsv.OpInsert), rec.SimHist(obsv.OpInsert))
	res.FlushPerTxn = float64(e.PM.Stats().FlushCalls-flush0) / float64(n)
	res.FencePerTxn = float64(e.Sys.Fences()-fence0) / float64(n)

	runtime.GC()
	runtime.ReadMemStats(&ms0)
	sim0 = e.Sys.Clock().Now()
	t0 = time.Now()
	for i := 0; i < n; i++ {
		ow, osim := time.Now(), e.Sys.Clock().Now()
		v, ok, err := e.Tree.Get(keys[i])
		if err != nil || !ok || len(v) == 0 {
			return res, fmt.Errorf("%s search %d: ok=%v err=%v", s, i, ok, err)
		}
		rec.ObserveWall(obsv.OpGet, 0, time.Since(ow).Nanoseconds())
		rec.ObserveSim(obsv.OpGet, e.Sys.Clock().Now()-osim)
	}
	wall = time.Since(t0)
	runtime.ReadMemStats(&ms1)
	res.SearchNsOp = float64(wall.Nanoseconds()) / float64(n)
	res.SearchAllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	res.SearchSimUsOp = float64(e.Sys.Clock().Now()-sim0) / float64(n) / 1000
	res.Search = quantilesOf(rec.WallHist(obsv.OpGet), rec.SimHist(obsv.OpGet))
	return res, nil
}

// runBenchJSON runs the wall-clock benchmark for every scheme and writes the
// JSON report. baselinePath, when non-empty, is a previous report to embed.
func runBenchJSON(outPath, baselinePath string, n, pageSize int, seed int64, shards, clients, maxBatch int, metricsAddr string, scrape bool) error {
	rep := BenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		N:         n,
		PageSize:  pageSize,
		Seed:      seed,
	}
	for _, s := range experiment.AllSchemes {
		r, err := runBenchScheme(s, n, pageSize, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-8s insert %10.0f ns/op %8.1f allocs/op   search %10.0f ns/op %8.1f allocs/op\n",
			r.Scheme, r.InsertNsOp, r.InsertAllocsOp, r.SearchNsOp, r.SearchAllocsOp)
		rep.Schemes = append(rep.Schemes, r)
	}
	if shards > 0 {
		series, err := runShardSeries(n, pageSize, seed, shards, clients, maxBatch, metricsAddr, scrape)
		if err != nil {
			return fmt.Errorf("sharded: %w", err)
		}
		rep.Sharded = series
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var base BenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		base.Baseline = nil // keep the trajectory one level deep
		rep.Baseline = &base
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}
