package main

// Wall-clock benchmark mode (-benchjson): unlike the figure tables, which
// report *simulated* nanoseconds, this mode measures how fast the emulation
// itself runs on the host — Go wall-clock ns/op and heap allocs/op for
// insert and search at a fixed transaction count across all five schemes.
// The output is a JSON trajectory file (BENCH_PR1.json et seq.) that later
// PRs regress against.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"fasp/internal/experiment"
	"fasp/internal/pmem"
	"fasp/internal/workload"
)

// BenchSchemeResult is one scheme's wall-clock measurements.
type BenchSchemeResult struct {
	Scheme         string  `json:"scheme"`
	InsertNsOp     float64 `json:"insert_ns_op"`
	InsertAllocsOp float64 `json:"insert_allocs_op"`
	InsertSimUsTxn float64 `json:"insert_sim_us_txn"`
	SearchNsOp     float64 `json:"search_ns_op"`
	SearchAllocsOp float64 `json:"search_allocs_op"`
	SearchSimUsOp  float64 `json:"search_sim_us_op"`
}

// BenchReport is the JSON document emitted by -benchjson.
type BenchReport struct {
	Generated string              `json:"generated"`
	GoVersion string              `json:"go_version"`
	CPUs      int                 `json:"cpus"`
	N         int                 `json:"n"`
	PageSize  int                 `json:"page_size"`
	Seed      int64               `json:"seed"`
	Schemes   []BenchSchemeResult `json:"schemes"`
	// Sharded holds the -shards series: a shards=1 baseline followed by the
	// requested shard count, with wall-clock and simulated-parallel
	// throughput (see shardbench.go on interpreting the two on small hosts).
	Sharded []ShardBenchResult `json:"sharded,omitempty"`
	// Baseline optionally embeds the previous trajectory point (e.g. the
	// pre-optimisation numbers) for side-by-side comparison.
	Baseline *BenchReport `json:"baseline,omitempty"`
}

// runBenchScheme measures one scheme: n single-insert transactions, then n
// point lookups over the inserted keys. Keys and values are pre-generated so
// the workload generator stays out of the measured region.
func runBenchScheme(s experiment.Scheme, n, pageSize int, seed int64) (BenchSchemeResult, error) {
	p := experiment.Params{N: n, PageSize: pageSize, Seed: seed}
	e := experiment.NewEnv(s, pmem.DefaultLatencies(300, 300), p)
	gen := workload.New(workload.Config{Seed: seed, RecordSize: 64})
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := 0; i < n; i++ {
		keys[i] = gen.NextKey()
		vals[i] = gen.NextValue()
	}

	res := BenchSchemeResult{Scheme: s.String()}
	var ms0, ms1 runtime.MemStats

	runtime.GC()
	runtime.ReadMemStats(&ms0)
	sim0 := e.Sys.Clock().Now()
	t0 := time.Now()
	for i := 0; i < n; i++ {
		if err := e.Tree.Insert(keys[i], vals[i]); err != nil {
			return res, fmt.Errorf("%s insert %d: %w", s, i, err)
		}
	}
	wall := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	res.InsertNsOp = float64(wall.Nanoseconds()) / float64(n)
	res.InsertAllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	res.InsertSimUsTxn = float64(e.Sys.Clock().Now()-sim0) / float64(n) / 1000

	runtime.GC()
	runtime.ReadMemStats(&ms0)
	sim0 = e.Sys.Clock().Now()
	t0 = time.Now()
	for i := 0; i < n; i++ {
		v, ok, err := e.Tree.Get(keys[i])
		if err != nil || !ok || len(v) == 0 {
			return res, fmt.Errorf("%s search %d: ok=%v err=%v", s, i, ok, err)
		}
	}
	wall = time.Since(t0)
	runtime.ReadMemStats(&ms1)
	res.SearchNsOp = float64(wall.Nanoseconds()) / float64(n)
	res.SearchAllocsOp = float64(ms1.Mallocs-ms0.Mallocs) / float64(n)
	res.SearchSimUsOp = float64(e.Sys.Clock().Now()-sim0) / float64(n) / 1000
	return res, nil
}

// runBenchJSON runs the wall-clock benchmark for every scheme and writes the
// JSON report. baselinePath, when non-empty, is a previous report to embed.
func runBenchJSON(outPath, baselinePath string, n, pageSize int, seed int64, shards, clients, maxBatch int) error {
	rep := BenchReport{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		CPUs:      runtime.NumCPU(),
		N:         n,
		PageSize:  pageSize,
		Seed:      seed,
	}
	for _, s := range experiment.AllSchemes {
		r, err := runBenchScheme(s, n, pageSize, seed)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%-8s insert %10.0f ns/op %8.1f allocs/op   search %10.0f ns/op %8.1f allocs/op\n",
			r.Scheme, r.InsertNsOp, r.InsertAllocsOp, r.SearchNsOp, r.SearchAllocsOp)
		rep.Schemes = append(rep.Schemes, r)
	}
	if shards > 0 {
		series, err := runShardSeries(n, pageSize, seed, shards, clients, maxBatch)
		if err != nil {
			return fmt.Errorf("sharded: %w", err)
		}
		rep.Sharded = series
	}
	if baselinePath != "" {
		raw, err := os.ReadFile(baselinePath)
		if err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		var base BenchReport
		if err := json.Unmarshal(raw, &base); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		base.Baseline = nil // keep the trajectory one level deep
		rep.Baseline = &base
	}
	out, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if outPath == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	return os.WriteFile(outPath, out, 0o644)
}
