// Command faspserver serves a sharded fasp.KV over the length-prefixed
// binary wire protocol (internal/server/wire): pipelined GET/PUT/DEL/
// BATCH/SCAN/COUNT/STATS/PING with typed error codes, cross-connection
// group commit, and BUSY backpressure that sheds requests, never
// connections.
//
// Usage:
//
//	faspserver -addr :4440 -shards 8 -metrics-addr :9100
//
// SIGTERM/SIGINT drains gracefully: the listener closes, in-flight
// batches commit and flush their responses, late requests get typed
// SHUTDOWN, and only then is the store closed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"fasp"
	"fasp/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:4440", "wire-protocol listen address")
		mAddr    = flag.String("metrics-addr", "", "serve /metrics (Prometheus text) on this address")
		pprofOn  = flag.Bool("pprof", false, "also mount net/http/pprof under /debug/pprof/ on the metrics address (off by default)")
		shards   = flag.Int("shards", 8, "hash-partitioned shards")
		scheme   = flag.String("scheme", "", "commit scheme (fast+, fast, nvwal, wal, journal; default fast+)")
		pageSize = flag.Int("pagesize", 4096, "slotted-page size in bytes")
		maxBatch = flag.Int("maxbatch", 0, "group-commit drain bound (0 = default)")
		inflight = flag.Int("inflight", 0, "max concurrently admitted requests before BUSY (0 = default 1024)")
		adaptive = flag.Bool("adaptive", false, "enable adaptive per-shard scheme + batch tuning")
		defrag   = flag.Float64("defrag", 0, "proactive defrag dead-byte threshold (0 = off)")
		idleTO   = flag.Duration("idle-timeout", 0, "close connections idle longer than this, after a typed TIMEOUT notice (0 = never)")
		writeTO  = flag.Duration("write-timeout", 0, "per-connection response write deadline (0 = none)")
		autoheal = flag.Bool("autoheal", false, "background auto-heal loop: recover degraded/crashed shards automatically")
		healIvl  = flag.Duration("heal-interval", 0, "with -autoheal: base heal retry cadence (0 = default 10ms)")
	)
	flag.Parse()

	kv, err := fasp.OpenKV(fasp.Options{
		Scheme:          *scheme,
		PageSize:        *pageSize,
		Shards:          *shards,
		MaxBatch:        *maxBatch,
		AdaptiveScheme:  *adaptive,
		AdaptiveBatch:   *adaptive,
		DefragThreshold: *defrag,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faspserver: open: %v\n", err)
		os.Exit(1)
	}

	var ms *fasp.MetricsServer
	if *mAddr != "" {
		if *pprofOn {
			ms, err = fasp.ServeMetricsPprof(*mAddr)
		} else {
			ms, err = fasp.ServeMetrics(*mAddr)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faspserver: metrics: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("faspserver: metrics on http://%s/metrics\n", ms.Addr())
		if *pprofOn {
			fmt.Printf("faspserver: pprof on http://%s/debug/pprof/\n", ms.Addr())
		}
	} else if *pprofOn {
		fmt.Fprintln(os.Stderr, "faspserver: -pprof requires -metrics-addr")
		os.Exit(1)
	}

	srv := server.New(kv, server.Config{
		MaxInFlight:  *inflight,
		IdleTimeout:  *idleTO,
		WriteTimeout: *writeTO,
		AutoHeal:     *autoheal,
		HealInterval: *healIvl,
	})
	bound, err := srv.Listen(*addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faspserver: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("faspserver: serving %d shards on %s\n", *shards, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sig
		fmt.Printf("faspserver: %v — draining\n", s)
		srv.Shutdown()
	}()

	if err := srv.Serve(); err != server.ErrServerClosed {
		fmt.Fprintf(os.Stderr, "faspserver: serve: %v\n", err)
		srv.Shutdown()
		kv.Close()
		os.Exit(1)
	}
	// Drain finished: every acked write is already durable; close the store.
	kv.Close()
	if ms != nil {
		ms.Close()
	}
	fmt.Println("faspserver: drained, store closed")
}
