// Command faspinspect prints the physical structure of a saved fasp
// snapshot: store metadata, a page census (types, fill factors, free
// space, fragmentation), B-tree shape, and — when the snapshot holds a SQL
// database — the catalog. Useful for studying how the slotted-page
// machinery lays data out and for debugging recovered images.
//
// Usage:
//
//	faspinspect db.fasp
//	faspinspect -pages db.fasp     # per-page detail
package main

import (
	"flag"
	"fmt"
	"os"

	"fasp"
	"fasp/internal/btree"
	"fasp/internal/fast"
	"fasp/internal/metrics"
	"fasp/internal/slotted"
	"fasp/internal/wal"
)

func main() {
	pages := flag.Bool("pages", false, "print per-page detail")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: faspinspect [-pages] <snapshot>")
		os.Exit(2)
	}
	db, err := fasp.OpenSnapshot(flag.Arg(0), fasp.Options{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "faspinspect: %v\n", err)
		os.Exit(1)
	}
	st := db.RawStore()
	fmt.Printf("snapshot: %s\n", flag.Arg(0))
	fmt.Printf("scheme:   %s\n", st.Name())
	fmt.Printf("pagesize: %d bytes\n", st.PageSize())

	var meta metaView
	switch s := st.(type) {
	case *fast.Store:
		m := s.Meta()
		meta = metaView{m.NPages, m.Root, m.FreeCount, m.TxID}
		fmt.Printf("stats:    %+v\n", s.Stats())
	case *wal.Store:
		m := s.Meta()
		meta = metaView{m.NPages, m.Root, m.FreeCount, m.TxID}
	default:
		fmt.Fprintln(os.Stderr, "faspinspect: unknown store type")
		os.Exit(1)
	}
	fmt.Printf("pages:    %d allocated, %d on free stack\n", meta.npages-1, meta.free)
	fmt.Printf("root:     page %d, last txid %d\n", meta.root, meta.txid)

	census(db, st.PageSize(), meta, *pages)
	treeShape(db)
	catalog(db)
}

type metaView struct {
	npages, root, free uint32
	txid               uint64
}

// census walks every allocated page through a read transaction.
func census(db *fasp.DB, pageSize int, meta metaView, detail bool) {
	st := db.RawStore()
	ptx, err := st.Begin()
	if err != nil {
		fmt.Fprintf(os.Stderr, "faspinspect: %v\n", err)
		return
	}
	defer ptx.Rollback()

	typeCount := map[byte]int{}
	var fillSum, freeSum, cells int
	var leafArea, leafDead int64
	t := metrics.NewTable("", "page", "type", "cells", "content@", "free-list(B)", "live(B)")
	for no := uint32(1); no < meta.npages; no++ {
		p, err := ptx.Page(no)
		if err != nil {
			continue
		}
		typeCount[p.Type()]++
		live := p.LiveBytes()
		fillSum += live
		freeSum += int(p.Header().Free)
		cells += p.NCells()
		if p.Type() == slotted.TypeLeaf {
			// Same arithmetic as the adaptive controller's FragScan: the cell
			// area is everything below the content pointer, dead is whatever
			// live cells do not cover.
			area := int64(pageSize) - int64(p.Header().Content)
			if dead := area - int64(live); dead > 0 {
				leafDead += dead
			}
			leafArea += area
		}
		if detail {
			t.AddRow(no, typeName(p.Type()), p.NCells(), p.Header().Content,
				p.Header().Free, live)
		}
	}
	n := int(meta.npages) - 1
	fmt.Printf("census:   %d leaves, %d interior, %d other\n",
		typeCount[slotted.TypeLeaf], typeCount[slotted.TypeInterior],
		n-typeCount[slotted.TypeLeaf]-typeCount[slotted.TypeInterior])
	if n > 0 {
		fmt.Printf("fill:     %d cells, avg %.1f%% live bytes/page, %.1f free-list B/page\n",
			cells, 100*float64(fillSum)/float64(n*pageSize), float64(freeSum)/float64(n))
	}
	if leafArea > 0 {
		fmt.Printf("frag:     %.1f%% of leaf cell area dead (%d B / %d B) — the ratio "+
			"fasp_shard_fragmentation_ratio exports and DefragThreshold tests\n",
			100*float64(leafDead)/float64(leafArea), leafDead, leafArea)
	}
	if detail {
		t.Render(os.Stdout)
	}
}

func typeName(t byte) string {
	switch t {
	case slotted.TypeLeaf:
		return "leaf"
	case slotted.TypeInterior:
		return "interior"
	case slotted.TypeMeta:
		return "meta"
	default:
		return fmt.Sprintf("%#x", t)
	}
}

// treeShape reports depth and record count of the primary tree.
func treeShape(db *fasp.DB) {
	st := db.RawStore()
	tr := btree.New(st)
	tx, err := tr.Begin()
	if err != nil {
		return
	}
	defer tx.Rollback()
	if err := tx.Validate(); err != nil {
		fmt.Printf("tree:     INVALID: %v\n", err)
		return
	}
	count, err := tx.Count()
	if err != nil {
		return
	}
	reach, err := tx.Reachable()
	if err != nil {
		return
	}
	fmt.Printf("root tree: valid, %d records, %d reachable pages (for SQL stores this is the catalog)\n", count, len(reach))
}

// catalog lists tables when the snapshot is a SQL database.
func catalog(db *fasp.DB) {
	names, err := db.Tables()
	if err != nil || len(names) == 0 {
		return
	}
	fmt.Println("catalog:")
	for _, n := range names {
		schema, _ := db.Schema(n)
		rows, err := db.Query("SELECT COUNT(*) FROM " + n)
		cnt := int64(-1)
		if err == nil && len(rows) == 1 {
			cnt = rows[0][0].AsInt()
		}
		fmt.Printf("  %-16s %6d rows   %s\n", n, cnt, schema)
	}
}
