// Command faspdb is an interactive SQL shell over the failure-atomic
// slotted-paging engine. It runs a full database on a simulated PM machine,
// so besides SQL it offers meta commands to inspect the simulated clock and
// to crash/recover the store.
//
// Usage:
//
//	faspdb                       # FAST+ at PM 300/300
//	faspdb -scheme nvwal -lat 900
//	faspdb -kv -shards 8         # sharded key/value shell
//	faspdb -connect host:4440    # remote KV shell over a running faspserver
//
// Meta commands: .help .clock .stats .crash .tables .quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"fasp"
	"fasp/internal/metrics"
)

func main() {
	var (
		scheme   = flag.String("scheme", "fast+", "commit scheme: fast+|fast|nvwal|wal|journal")
		lat      = flag.Int64("lat", 300, "PM read/write latency (ns per cache line)")
		wlat     = flag.Int64("wlat", 0, "PM write latency override (defaults to -lat)")
		openPath = flag.String("open", "", "load a snapshot saved with .save")
		kvMode   = flag.Bool("kv", false, "key/value shell instead of SQL (required for -shards)")
		connect  = flag.String("connect", "", "remote KV shell against a running faspserver at this address")
		shards   = flag.Int("shards", 0, "with -kv: hash-partition across this many shards")
		maxBatch = flag.Int("maxbatch", 0, "with -kv -shards: group-commit drain bound (0 = default)")
	)
	flag.Parse()
	if *wlat == 0 {
		*wlat = *lat
	}
	if *connect != "" {
		runRemoteShell(*connect)
		return
	}
	if *kvMode {
		opts := fasp.Options{Scheme: *scheme, PMReadNS: *lat, PMWriteNS: *wlat, Shards: *shards, MaxBatch: *maxBatch}
		var kv *fasp.KV
		var err error
		if *openPath != "" {
			// Shard count and scheme come from the snapshot header.
			kv, err = fasp.OpenSnapshotKV(*openPath, fasp.Options{PMReadNS: *lat, PMWriteNS: *wlat})
		} else {
			kv, err = fasp.OpenKV(opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "faspdb: %v\n", err)
			os.Exit(1)
		}
		runKVShell(kv, *lat, *wlat)
		return
	}
	if *shards > 1 {
		fmt.Fprintln(os.Stderr, "faspdb: -shards requires -kv (the SQL engine is single-store)")
		os.Exit(2)
	}
	var db *fasp.DB
	var err error
	if *openPath != "" {
		db, err = fasp.OpenSnapshot(*openPath, fasp.Options{PMReadNS: *lat, PMWriteNS: *wlat})
	} else {
		db, err = fasp.Open(fasp.Options{Scheme: *scheme, PMReadNS: *lat, PMWriteNS: *wlat})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "faspdb: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("faspdb — %s on emulated PM (%d/%d ns). Type .help for meta commands.\n",
		db.SchemeName(), *lat, *wlat)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for {
		if pending.Len() == 0 {
			fmt.Print("fasp> ")
		} else {
			fmt.Print("  ...> ")
		}
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") && pending.Len() == 0 {
			if meta(db, line) {
				return
			}
			continue
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
		if !strings.HasSuffix(line, ";") {
			continue
		}
		src := pending.String()
		pending.Reset()
		t0 := db.SimulatedNS()
		results, err := db.Exec(src)
		elapsed := db.SimulatedNS() - t0
		if err != nil {
			fmt.Printf("error: %v\n", err)
			continue
		}
		for _, res := range results {
			printResult(res)
		}
		fmt.Printf("(%s simulated us)\n", metrics.Usec(elapsed))
	}
}

func printResult(res fasp.Result) {
	if len(res.Columns) == 0 {
		if res.RowsAffected > 0 {
			fmt.Printf("%d row(s) affected\n", res.RowsAffected)
		}
		return
	}
	t := metrics.NewTable("", res.Columns...)
	for _, row := range res.Rows {
		cells := make([]any, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		t.AddRow(cells...)
	}
	t.Render(os.Stdout)
	fmt.Printf("%d row(s)\n", len(res.Rows))
}

// meta handles dot commands; returns true to quit.
func meta(db *fasp.DB, line string) bool {
	switch strings.Fields(line)[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Println(`meta commands:
  .help          this help
  .clock         simulated time and phase totals
  .stats         PM event counters
  .crash         simulate a power failure and recover
  .tables        list tables
  .save <file>   write a crash-consistent snapshot (reload: faspdb -open <file>)
  .quit          exit
SQL statements end with ';' and may span lines.`)
	case ".save":
		fields := strings.Fields(line)
		if len(fields) != 2 {
			fmt.Println("usage: .save <file>")
			break
		}
		if err := db.Save(fields[1]); err != nil {
			fmt.Printf("save failed: %v\n", err)
		} else {
			fmt.Printf("saved to %s\n", fields[1])
		}
	case ".clock":
		fmt.Printf("simulated time: %s us\n", metrics.Usec(db.SimulatedNS()))
		for _, s := range metrics.SortedPhases(db.System().Clock().Phases()) {
			fmt.Println("  " + s)
		}
	case ".stats":
		s := db.PMStats()
		fmt.Printf("PM line fills:   %d\n", s.LineFills)
		fmt.Printf("PM cache hits:   %d\n", s.CacheHits)
		fmt.Printf("word stores:     %d (%d bytes)\n", s.WordStores, s.BytesStored)
		fmt.Printf("clflush calls:   %d (%d line write-backs)\n", s.FlushCalls, s.LineWritebacks)
		fmt.Printf("fences:          %d\n", db.System().Fences())
	case ".crash":
		db.Crash(fasp.CrashOptions{Seed: db.SimulatedNS(), EvictProb: 0.5})
		if err := db.Reopen(); err != nil {
			fmt.Printf("recovery failed: %v\n", err)
		} else {
			fmt.Println("crashed and recovered")
		}
	case ".tables":
		names, err := db.Tables()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		for _, n := range names {
			schema, _ := db.Schema(n)
			fmt.Printf("%-20s %s\n", n, schema)
		}
		if idx, _ := db.Indexes(); len(idx) > 0 {
			fmt.Printf("indexes: %s\n", strings.Join(idx, ", "))
		}
		if len(names) == 0 {
			fmt.Println("(no tables)")
		}
	default:
		fmt.Println("unknown meta command; try .help")
	}
	return false
}
