package main

// KV shell mode (-kv): an interactive ordered key/value store instead of
// the SQL engine, with optional sharding (-shards). Commands operate on the
// facade's KV API, so the shell drives the same code paths applications
// use — including the sharded engine's mailbox writers and group commit.

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"fasp"
	"fasp/internal/metrics"
)

func runKVShell(kv *fasp.KV, lat, wlat int64) {
	defer kv.Close()
	mode := "single store"
	if kv.Sharded() {
		mode = fmt.Sprintf("%d shards, group commit ≤%d", kv.Shards(), kv.MaxBatch())
	}
	fmt.Printf("faspdb — %s KV (%s) on emulated PM (%d/%d ns). Type help for commands.\n",
		kv.SchemeName(), mode, lat, wlat)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("kv> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		t0 := kv.SimulatedNS()
		quit := kvCommand(kv, fields)
		if elapsed := kv.SimulatedNS() - t0; elapsed > 0 {
			fmt.Printf("(%s simulated us)\n", metrics.Usec(elapsed))
		}
		if quit {
			return
		}
	}
}

// kvCommand executes one shell line; returns true to quit.
func kvCommand(kv *fasp.KV, fields []string) bool {
	switch fields[0] {
	case "quit", "exit", ".quit", ".exit":
		return true
	case "help", ".help":
		fmt.Println(`commands:
  put <key> <value>    insert or replace
  get <key>            read
  del <key>            delete
  scan [lo [hi]]       list keys in order (merged across shards)
  count                number of records
  .shards              per-shard statistics
  .clock               simulated time and phase totals
  .stats               PM event counters + op latency percentiles
  .trace               sampled commit-path transaction traces
  .crash               power-fail every shard and recover
  .save <file>         crash-consistent snapshot (reload: faspdb -kv -open <file>)
  quit                 exit`)
	case "put":
		if len(fields) != 3 {
			fmt.Println("usage: put <key> <value>")
			break
		}
		if err := kv.Put([]byte(fields[1]), []byte(fields[2])); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	case "get":
		if len(fields) != 2 {
			fmt.Println("usage: get <key>")
			break
		}
		v, ok, err := kv.Get([]byte(fields[1]))
		switch {
		case err != nil:
			fmt.Printf("error: %v\n", err)
		case !ok:
			fmt.Println("(not found)")
		default:
			fmt.Printf("%s\n", v)
		}
	case "del":
		if len(fields) != 2 {
			fmt.Println("usage: del <key>")
			break
		}
		if err := kv.Delete([]byte(fields[1])); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	case "scan":
		var lo, hi []byte
		if len(fields) > 1 {
			lo = []byte(fields[1])
		}
		if len(fields) > 2 {
			hi = []byte(fields[2])
		}
		n := 0
		err := kv.Scan(lo, hi, func(k, v []byte) bool {
			fmt.Printf("%s = %s\n", k, v)
			n++
			return n < 1000
		})
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Printf("%d row(s)\n", n)
	case "count":
		n, err := kv.Count()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Println(n)
	case ".shards":
		for i := 0; i < kv.Shards(); i++ {
			in, err := kv.ShardStats(i)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			fmt.Printf("shard %d: sim %s us, %d ops, %d batches (largest %d)%s\n",
				i, metrics.Usec(in.SimNS), in.Ops, in.Batches, in.MaxDrained, healthSuffix(in))
		}
		if kv.Sharded() {
			st := kv.EngineStats()
			fmt.Printf("elapsed (slowest shard): %s us; total simulated work: %s us\n",
				metrics.Usec(st.SimMaxNS), metrics.Usec(st.SimSumNS))
		}
	case ".clock":
		fmt.Printf("simulated time: %s us\n", metrics.Usec(kv.SimulatedNS()))
		for _, s := range metrics.SortedPhases(kv.Phases()) {
			fmt.Println("  " + s)
		}
	case ".stats":
		s := kv.PMStats()
		fmt.Printf("PM line fills:   %d\n", s.LineFills)
		fmt.Printf("PM cache hits:   %d\n", s.CacheHits)
		fmt.Printf("word stores:     %d (%d bytes)\n", s.WordStores, s.BytesStored)
		fmt.Printf("clflush calls:   %d (%d line write-backs)\n", s.FlushCalls, s.LineWritebacks)
		m := kv.Metrics()
		if len(m.Ops) > 0 {
			fmt.Println("op latencies (wall / simulated, p50 p95 p99 ns):")
			for _, o := range m.Ops {
				fmt.Printf("  %-7s %6d ops  wall %d %d %d  sim %d %d %d\n",
					o.Op, o.Count, o.WallP50NS, o.WallP95NS, o.WallP99NS,
					o.SimP50NS, o.SimP95NS, o.SimP99NS)
			}
			fmt.Printf("commit events: clflush=%d fence=%d htm=%d/%d log=%d ckpt=%d; %d batches, %d slow ops\n",
				m.Events.Flush, m.Events.Fence, m.Events.HTMCommit, m.Events.HTMAbort,
				m.Events.LogAppend, m.Events.Checkpoint, m.Batches, m.SlowOps)
			if m.BatchSize.Count > 0 {
				fmt.Printf("batch size: p50=%d p99=%d mean=%.1f; mailbox depth p99=%d\n",
					m.BatchSize.Quantile(0.50), m.BatchSize.Quantile(0.99),
					m.BatchSize.Mean(), m.MailDepth.Quantile(0.99))
			}
		}
	case ".trace":
		samples := kv.TraceSample()
		if len(samples) == 0 {
			fmt.Println("(no samples yet — every Nth transaction and every slow op is sampled)")
			break
		}
		for _, s := range samples {
			fmt.Printf("seq=%d shard=%d %s ops=%d sim=%dns wall=%dns clflush=%d fence=%d%s\n",
				s.Seq, s.Shard, s.Op, s.Ops, s.SimNS, s.WallNS,
				s.Events.Flush, s.Events.Fence, slowSuffix(s.Slow))
		}
	case ".crash":
		kv.Crash(fasp.CrashOptions{Seed: kv.SimulatedNS(), EvictProb: 0.5})
		if err := kv.ReopenKV(); err != nil {
			fmt.Printf("recovery failed: %v\n", err)
		} else if kv.Sharded() {
			fmt.Printf("crashed and recovered all %d shards\n", kv.Shards())
		} else {
			fmt.Println("crashed and recovered")
		}
	case ".save":
		if len(fields) != 2 {
			fmt.Println("usage: .save <file>")
			break
		}
		if err := kv.Save(fields[1]); err != nil {
			fmt.Printf("save failed: %v\n", err)
		} else {
			fmt.Printf("saved to %s\n", fields[1])
		}
	default:
		fmt.Println("unknown command; try help")
	}
	return false
}

// healthSuffix annotates a shard line when it is not serving.
func healthSuffix(in fasp.ShardInfo) string {
	if in.Health == 0 {
		return ""
	}
	return fmt.Sprintf(" [%s]", in.Health)
}

// slowSuffix marks slow-op samples in .trace output.
func slowSuffix(slow bool) string {
	if slow {
		return " SLOW"
	}
	return ""
}
