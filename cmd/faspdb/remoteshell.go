package main

// Remote shell mode (-connect): the same key/value commands as -kv, but
// issued over the wire protocol to a running faspserver instead of an
// in-process store. Built on internal/server/client, so the shell, the
// load generator, and the tests all share one frame encoder.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"fasp/internal/server/client"
)

func runRemoteShell(addr string) {
	cl, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "faspdb: connect %s: %v\n", addr, err)
		os.Exit(1)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		fmt.Fprintf(os.Stderr, "faspdb: ping %s: %v\n", addr, err)
		os.Exit(1)
	}
	fmt.Printf("faspdb — connected to faspserver at %s. Type help for commands.\n", addr)

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("kv@" + addr + "> ")
		if !sc.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if remoteCommand(cl, strings.Fields(line)) {
			return
		}
	}
}

// remoteCommand executes one shell line against the server; returns true
// to quit.
func remoteCommand(cl *client.Client, fields []string) bool {
	switch fields[0] {
	case "quit", "exit", ".quit", ".exit":
		return true
	case "help", ".help":
		fmt.Println(`commands:
  put <key> <value>    insert or replace
  get <key>            read
  del <key>            delete
  scan [lo [hi]]       list keys in order
  count                number of records
  ping                 round trip to the server
  .stats               server + engine statistics (JSON)
  quit                 exit`)
	case "put":
		if len(fields) != 3 {
			fmt.Println("usage: put <key> <value>")
			break
		}
		if err := cl.Put([]byte(fields[1]), []byte(fields[2])); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	case "get":
		if len(fields) != 2 {
			fmt.Println("usage: get <key>")
			break
		}
		v, ok, err := cl.Get([]byte(fields[1]))
		switch {
		case err != nil:
			fmt.Printf("error: %v\n", err)
		case !ok:
			fmt.Println("(not found)")
		default:
			fmt.Printf("%s\n", v)
		}
	case "del":
		if len(fields) != 2 {
			fmt.Println("usage: del <key>")
			break
		}
		if err := cl.Del([]byte(fields[1])); err != nil {
			fmt.Printf("error: %v\n", err)
		}
	case "scan":
		var lo, hi []byte
		if len(fields) > 1 {
			lo = []byte(fields[1])
		}
		if len(fields) > 2 {
			hi = []byte(fields[2])
		}
		n := 0
		err := cl.Scan(lo, hi, false, func(k, v []byte) bool {
			fmt.Printf("%s = %s\n", k, v)
			n++
			return n < 1000
		})
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Printf("%d row(s)\n", n)
	case "count":
		n, err := cl.Count()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		fmt.Println(n)
	case "ping":
		if err := cl.Ping(); err != nil {
			fmt.Printf("error: %v\n", err)
		} else {
			fmt.Println("pong")
		}
	case ".stats", "stats":
		raw, err := cl.Stats()
		if err != nil {
			fmt.Printf("error: %v\n", err)
			break
		}
		var pretty bytes.Buffer
		if json.Indent(&pretty, raw, "", "  ") == nil {
			fmt.Println(pretty.String())
		} else {
			fmt.Printf("%s\n", raw)
		}
	default:
		fmt.Println("unknown command; try help")
	}
	return false
}
