package fasp_test

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fasp"
)

// goldenAdaptiveRecord pins one shard of the adaptive golden workload: the
// controller's complete decision trace (every window's signals, AIMD step,
// fragmentation measurement, and migration), the scheme the shard ends
// under, and a content checksum. The trace is a pure function of the op
// sequence on the ApplyBatch path, so any drift in the controller's
// arithmetic, the window bookkeeping, or the migration protocol shows up as
// a golden diff.
type goldenAdaptiveRecord struct {
	Scheme   string              `json:"scheme"`
	MaxBatch int                 `json:"max_batch"`
	Count    int                 `json:"count"`
	TreeSum  uint64              `json:"tree_sum"`
	Trace    []fasp.TuneDecision `json:"trace"`
}

// runGoldenAdaptiveWorkload drives every adaptive loop through a fixed
// three-phase workload on the deterministic ApplyBatch path:
//
//  1. batch-heavy inserts — mean batch pegged at the drain bound pushes
//     both shards fast+ → wal (cross-family migration);
//  2. deletes — carve dead space so fragmentation crosses the defrag
//     threshold;
//  3. single-op updates — single-leaf commits pull the shards back
//     wal → fast+ while idle windows defragment.
func runGoldenAdaptiveWorkload(t *testing.T) []goldenAdaptiveRecord {
	t.Helper()
	const shards = 2
	kv, err := fasp.OpenKV(fasp.Options{
		Scheme: "fast+", Shards: shards, MaxBatch: 8,
		PageSize: 1024, MaxPages: 4096, CacheBytes: 16 << 10,
		AdaptiveScheme: true, AdaptiveBatch: true, DefragThreshold: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	apply := func(ops []fasp.Op) {
		t.Helper()
		for i, err := range kv.ApplyBatch(ops) {
			if err != nil {
				t.Fatalf("adaptive golden op %d (%s): %v", i, ops[i].Kind, err)
			}
		}
	}
	key := func(i int) []byte { return []byte(fmt.Sprintf("g%06d", i)) }
	val := func(i int) []byte { return []byte(fmt.Sprintf("value-%06d-%040d", i, i)) }

	// Phase 1: 70 batch-heavy calls (64 ops each).
	var keys [][]byte
	id := 0
	for call := 0; call < 70; call++ {
		ops := make([]fasp.Op, 0, 64)
		for j := 0; j < 64; j++ {
			k := key(id)
			keys = append(keys, k)
			ops = append(ops, fasp.Op{Kind: fasp.OpInsert, Key: k, Val: val(id)})
			id++
		}
		apply(ops)
	}

	// Phase 2: delete every third key.
	var ops []fasp.Op
	for i := 0; i < len(keys); i += 3 {
		ops = append(ops, fasp.Op{Kind: fasp.OpDelete, Key: keys[i]})
	}
	apply(ops)

	// Phase 3: 300 two-op update calls over surviving keys.
	var live [][]byte
	for i := range keys {
		if i%3 != 0 {
			live = append(live, keys[i])
		}
	}
	for call := 0; call < 300; call++ {
		apply([]fasp.Op{
			{Kind: fasp.OpUpdate, Key: live[(call*2)%len(live)], Val: val(call + 100000)},
			{Kind: fasp.OpUpdate, Key: live[(call*2+1)%len(live)], Val: val(call + 200000)},
		})
	}

	recs := make([]goldenAdaptiveRecord, shards)
	for i := 0; i < shards; i++ {
		scheme, err := kv.ShardScheme(i)
		if err != nil {
			t.Fatal(err)
		}
		mb, err := kv.ShardMaxBatch(i)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := kv.TuneTrace(i)
		if err != nil {
			t.Fatal(err)
		}
		rec := goldenAdaptiveRecord{Scheme: scheme, MaxBatch: mb, Trace: trace}
		h := fnv.New64a()
		if err := kv.ShardScan(i, nil, nil, func(k, v []byte) bool {
			h.Write(k)
			h.Write(v)
			rec.Count++
			return true
		}); err != nil {
			t.Fatalf("shard %d scan: %v", i, err)
		}
		rec.TreeSum = h.Sum64()
		recs[i] = rec
	}
	return recs
}

// TestGoldenAdaptiveDeterminism compares the adaptive workload's per-shard
// decision traces and content against testdata/golden_adaptive.json.
// Regenerate only on an intentional controller or protocol change:
//
//	go test -run TestGoldenAdaptiveDeterminism -update-golden .
func TestGoldenAdaptiveDeterminism(t *testing.T) {
	got := runGoldenAdaptiveWorkload(t)

	path := filepath.Join("testdata", "golden_adaptive.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("adaptive golden rewritten: %s", path)
		return
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read adaptive golden (run with -update-golden to create): %v", err)
	}
	var want []goldenAdaptiveRecord
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden has %d shards, run produced %d", len(want), len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			gj, _ := json.Marshal(got[i])
			wj, _ := json.Marshal(want[i])
			t.Errorf("shard %d: adaptive behavior diverged from golden\n got: %s\nwant: %s", i, gj, wj)
		}
	}

	// The workload is built to exercise every loop: both shards must have
	// migrated out and back, and defragged at least once.
	for i, rec := range got {
		sawOut, sawBack, defragged := false, false, false
		for _, d := range rec.Trace {
			if d.Migrated && d.Migrate == "wal" {
				sawOut = true
			}
			if d.Migrated && d.Migrate == "fast+" {
				sawBack = true
			}
			if d.DefragPages > 0 {
				defragged = true
			}
		}
		if !sawOut || !sawBack || !defragged {
			t.Errorf("shard %d: workload no longer exercises all loops (out=%v back=%v defrag=%v)",
				i, sawOut, sawBack, defragged)
		}
		if rec.Scheme != "fast+" {
			t.Errorf("shard %d: final scheme %q, want fast+ after the return migration", i, rec.Scheme)
		}
	}
}

// TestGoldenAdaptiveStable re-runs the adaptive workload twice in-process
// and requires identical records.
func TestGoldenAdaptiveStable(t *testing.T) {
	a := runGoldenAdaptiveWorkload(t)
	b := runGoldenAdaptiveWorkload(t)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two identical adaptive runs diverged:\n a: %+v\n b: %+v", a, b)
	}
}
